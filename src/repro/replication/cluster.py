"""The replicated cluster: replicas, certifier, load balancer and clients wired together.

:class:`ReplicatedCluster` is the simulated counterpart of the whole testbed
of Section 4.4: N replica machines (each a CPU, a disk and a database
engine with a bounded buffer pool), the replicated certifier, the load
balancer in front, the monitoring daemons feeding it utilisation data, and a
closed-loop client population.  It also implements the
:class:`~repro.core.balancer.ClusterView` protocol, i.e. it *is* the narrow
interface through which load-balancing policies observe the system.

A cluster with ``num_replicas=1`` and a round-robin balancer doubles as the
"Single" standalone database bar of Figures 3, 4 and 7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.core.balancer import LoadBalancer
from repro.core.routing import RoutingTable
from repro.net.channel import Network, NetworkConfig
from repro.replication.certifier import Certifier
from repro.replication.proxy import ProxyConfig
from repro.replication.recovery import ReplicatedCertifierLog
from repro.replication.replica import Replica
from repro.replication.sharding import ShardedCertifier

if TYPE_CHECKING:
    from repro.elasticity.membership import MembershipManager
    from repro.obs.hub import ObservabilityHub
from repro.sim.clients import ClientConfig, ClientPopulation
from repro.sim.metrics import MetricsCollector
from repro.sim.monitor import ClusterMonitor, LoadSample
from repro.sim.resources import ReplicaResources
from repro.sim.simulator import Simulator
from repro.storage.buffer_pool import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.disk import DiskModel
from repro.storage.engine import DatabaseEngine, EngineConfig
from repro.storage.pages import mb
from repro.storage.planner import QueryPlanner
from repro.workloads.generator import WorkloadGenerator, WorkloadSchedule
from repro.workloads.spec import TransactionType, WorkloadSpec

#: Memory reserved for the OS, PostgreSQL processes, proxy and monitoring
#: daemons; subtracted from physical RAM before sizing buffer pools and
#: before bin packing (Section 4.4).
DEFAULT_MEMORY_OVERHEAD_BYTES = mb(70)


@dataclass
class ClusterConfig:
    """Configuration of one experiment's cluster."""

    num_replicas: int = 16
    replica_ram_bytes: int = mb(512)
    memory_overhead_bytes: int = DEFAULT_MEMORY_OVERHEAD_BYTES
    clients_per_replica: int = 10
    think_time_s: float = 0.5
    disk: DiskModel = field(default_factory=DiskModel)
    engine: EngineConfig = field(default_factory=EngineConfig)
    proxy: ProxyConfig = field(default_factory=ProxyConfig)
    monitor_interval_s: float = 5.0
    balancer_period_s: float = 5.0
    propagation_interval_s: float = 0.5
    #: How often the certifier log is truncated to the version every replica
    #: (live, draining or crashed-but-restorable) has already applied, so the
    #: log stops growing without bound on long runs.  0 disables truncation.
    log_truncation_interval_s: float = 30.0
    warm_start: bool = True
    seed: int = 1
    #: Number of synchronous certifier backups (the paper runs a leader plus
    #: two).  0 keeps the single logical certifier; > 0 wires in a
    #: :class:`~repro.replication.recovery.ReplicatedCertifierLog` so the
    #: fault injector can fail the leader over mid-run.
    certifier_backups: int = 0
    #: Shards of the certification conflict index and log.  1 -- the
    #: default -- builds the plain global :class:`Certifier`, keeping every
    #: seeded golden bit-identical by construction.  > 1 builds a
    #: :class:`~repro.replication.sharding.ShardedCertifier` partitioned by
    #: (relation, key-range); under the simulator's atomic round trips the
    #: behaviour is still bit-identical at any shard count (commit versions
    #: stay one global sequence), while certification state and truncation
    #: scale per shard.
    certifier_shards: int = 1
    #: Unreliable-network model (:class:`repro.net.channel.NetworkConfig`).
    #: ``None`` -- the default -- builds no channels at all: certification
    #: round trips and lag notifications take the direct loss-free defer
    #: path, keeping every seeded golden bit-identical.  Set a config (even
    #: a perfect one) to route them over per-replica channels with
    #: schedulable partitions, drops, duplication and jitter, and to switch
    #: certification to at-least-once RPC.
    network: Optional[NetworkConfig] = None

    def __post_init__(self) -> None:
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.certifier_backups < 0:
            raise ValueError("certifier_backups cannot be negative")
        if self.certifier_shards < 1:
            raise ValueError("certifier_shards must be at least 1")
        if self.log_truncation_interval_s < 0:
            raise ValueError("log_truncation_interval_s cannot be negative")
        if self.replica_ram_bytes <= self.memory_overhead_bytes:
            raise ValueError("replica RAM must exceed the fixed memory overhead")
        if self.clients_per_replica <= 0:
            raise ValueError("clients_per_replica must be positive")

    @property
    def buffer_bytes(self) -> int:
        """Memory actually available for database pages at one replica."""
        return self.replica_ram_bytes - self.memory_overhead_bytes

    @property
    def total_clients(self) -> int:
        return self.num_replicas * self.clients_per_replica


@dataclass
class RunResult:
    """Everything an experiment needs from one simulated run."""

    policy: str
    config: ClusterConfig
    metrics: MetricsCollector
    groupings: Dict[str, List[str]] = field(default_factory=dict)
    replica_counts: Dict[str, int] = field(default_factory=dict)
    certifier_aborts: int = 0

    @property
    def throughput_tps(self) -> float:
        return self.metrics.throughput_tps()

    @property
    def response_time_s(self) -> float:
        return self.metrics.average_response_time()

    @property
    def read_kb_per_txn(self) -> float:
        return self.metrics.read_kb_per_transaction()

    @property
    def write_kb_per_txn(self) -> float:
        return self.metrics.write_kb_per_transaction()


class _Notification:
    """A lag notification in flight from the certifier to one proxy.

    Cancel-aware: the notification only fires if its replica's entry is
    still in the pending set.  The entry disappears when the replica
    crashes (``_purge_replica_state``), when an unreliable channel drops the
    message (:meth:`drop`, invoked at the drop decision so a fresh
    notification can be sent instead of the dedup entry leaking forever),
    or when a duplicated delivery already consumed it.
    """

    __slots__ = ("pending", "replica")

    def __init__(self, pending: Set[int], replica: Replica) -> None:
        self.pending = pending
        self.replica = replica

    def __call__(self) -> None:
        replica_id = self.replica.replica_id
        if replica_id not in self.pending:
            return
        self.pending.discard(replica_id)
        self.replica.pull_updates(trigger="notification")

    def drop(self) -> None:
        """The channel lost this notification: release the dedup entry."""
        self.pending.discard(self.replica.replica_id)


class _InFlight:
    """The completion continuation of one admitted transaction.

    Slotted and allocated once per admission (the request path's only
    per-transaction allocation on the cluster side); registered in the
    replica's in-flight table until it runs, so a crash can fail every
    registered continuation while the pop guarantees each runs at most once
    (a late continuation of a crash-failed transaction is a no-op).
    """

    __slots__ = ("cluster", "pending", "token", "replica_id", "txn_type",
                 "on_complete")

    def __init__(self, cluster: "ReplicatedCluster", pending: Dict[int, "_InFlight"],
                 token: int, replica_id: int, txn_type: TransactionType,
                 on_complete: Callable[[], None]) -> None:
        self.cluster = cluster
        self.pending = pending
        self.token = token
        self.replica_id = replica_id
        self.txn_type = txn_type
        self.on_complete = on_complete

    def __call__(self, committed: bool) -> None:
        if self.pending.pop(self.token, None) is None:
            return
        cluster = self.cluster
        replica_id = self.replica_id
        cluster.routing.on_complete(replica_id)
        hook = cluster._complete_hook
        if hook is not None:
            hook(replica_id, self.txn_type)
        self.on_complete()


class ReplicatedCluster:
    """Builds and runs one replicated-database configuration."""

    def __init__(self, workload: WorkloadSpec, balancer: LoadBalancer,
                 config: Optional[ClusterConfig] = None,
                 schedule: Optional[WorkloadSchedule] = None,
                 mix: Optional[str] = None) -> None:
        self._workload = workload
        self.balancer = balancer
        self.config = config or ClusterConfig()
        if schedule is None:
            if mix is None:
                raise ValueError("provide either a mix name or a workload schedule")
            schedule = WorkloadSchedule.constant(mix)
        self.schedule = schedule

        self.sim = Simulator()
        self._catalog = Catalog(schema=workload.schema)
        self._planner = QueryPlanner(catalog=self._catalog)
        if self.config.certifier_backups > 0:
            self.certifier = ReplicatedCertifierLog.create(
                self.config.certifier_backups, shards=self.config.certifier_shards)
        elif self.config.certifier_shards > 1:
            self.certifier = ShardedCertifier(num_shards=self.config.certifier_shards)
        else:
            self.certifier = Certifier()
        self.monitor = ClusterMonitor(self.sim, interval=self.config.monitor_interval_s)
        self.metrics = MetricsCollector(warmup_seconds=0.0)
        #: Observability hub (repro.obs.ObservabilityHub) or None.  Set by
        #: hub.attach(); the cold-path subsystems (membership, faults,
        #: autoscaler) publish events through it when present.  Must exist
        #: before _build_replicas so joiners can be instrumented uniformly.
        self.observability: Optional["ObservabilityHub"] = None
        #: Consistency checker (repro.net.invariants.ConsistencyChecker) or
        #: None.  Installed by the checker itself; replicas built while it
        #: is present get an apply ledger armed.  Same contract as
        #: ``observability``: must exist before _build_replicas.
        self.consistency = None
        #: The unreliable-network model, or None for the direct defer path.
        self.network = Network(self.sim, self.config.network) \
            if self.config.network is not None else None
        self.replicas: Dict[int, Replica] = {}
        #: event-maintained routing state (outstanding counters, live-replica
        #: cache, effective loads) shared with the balancer through the view.
        self.routing = RoutingTable()
        self.monitor.on_sample = self.routing.publish_load
        self._inflight: Dict[int, Dict[int, Callable[[bool], None]]] = {}
        self._inflight_token = 0
        self._pulls_scheduled: Set[int] = set()
        self._notify_pending: Set[int] = set()
        self._next_replica_id = 0
        self._membership: Optional["MembershipManager"] = None
        self._started = False
        self._build_replicas()
        self.generator = WorkloadGenerator(spec=self._workload, schedule=self.schedule,
                                           seed=self.config.seed)
        self.clients = ClientPopulation(
            sim=self.sim,
            config=ClientConfig(
                clients=self.config.total_clients,
                think_time_s=self.config.think_time_s,
                seed=self.config.seed,
            ),
            generator=self.generator,
            submit=self._submit,
        )
        # Dispatch/complete notifications are opt-in per policy class (none
        # of the built-in policies override the hooks), so the admission
        # fast path does not pay a no-op Python call per transaction.
        self._dispatch_hook = (
            self.balancer.on_dispatch
            if type(self.balancer).on_dispatch is not LoadBalancer.on_dispatch
            else None)
        self._complete_hook = (
            self.balancer.on_complete
            if type(self.balancer).on_complete is not LoadBalancer.on_complete
            else None)
        self.balancer.attach(self)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_replicas(self) -> None:
        for _ in range(self.config.num_replicas):
            self._activate_replica(self._make_replica(self._claim_replica_id()))

    def _claim_replica_id(self) -> int:
        replica_id = self._next_replica_id
        self._next_replica_id += 1
        return replica_id

    def _make_replica(self, replica_id: int) -> Replica:
        """Build one replica machine (engine + resources + proxy), unwired."""
        buffer_pool = BufferPool(capacity_bytes=self.config.buffer_bytes)
        engine = DatabaseEngine(
            catalog=self._catalog,
            buffer_pool=buffer_pool,
            config=self.config.engine,
            rng=random.Random(self.config.seed * 1000 + replica_id),
        )
        resources = ReplicaResources.create(self.sim, replica_id)
        network = self.network
        replica = Replica(
            replica_id=replica_id,
            sim=self.sim,
            engine=engine,
            resources=resources,
            certifier=self.certifier,
            disk_model=self.config.disk,
            proxy_config=self.config.proxy,
            channel=network.link(replica_id) if network is not None else None,
        )
        replica.metrics = self.metrics
        replica.on_local_commit = self._on_local_commit
        obs = self.observability
        if obs is not None:
            obs.instrument_replica(replica)
        if self.consistency is not None:
            self.consistency.arm(replica)
        return replica

    def _activate_replica(self, replica: Replica) -> None:
        """Put a replica in service: dispatchable, monitored, pulling updates."""
        replica_id = replica.replica_id
        self.replicas[replica_id] = replica
        self.routing.add_replica(replica_id)
        self._inflight.setdefault(replica_id, {})
        self.monitor.register(replica_id, replica.resources)
        # Register the propagation cursor with the certifier's lag index so
        # commit batches can find this replica when it falls behind; every
        # subsequent proxy.advance re-arms the entry.
        self.certifier.subscriptions.subscribe(replica_id,
                                               replica.proxy.applied_version)
        if self._started:
            self._schedule_pulls(replica)

    def _deactivate_replica(self, replica_id: int) -> Replica:
        """Take a replica out of service (crash or graceful leave).

        It disappears from the balancer's view, the monitor and the
        certifier's lag-subscription index; outstanding counters are kept so
        draining and crash-failing stay accountable.
        """
        replica = self.replicas.pop(replica_id)
        self.routing.remove_replica(replica_id)
        self.monitor.unregister(replica_id)
        self.certifier.subscriptions.unsubscribe(replica_id)
        return replica

    def _schedule_pulls(self, replica: Replica) -> None:
        """Start the replica's periodic update pull, once per replica id.

        The loop stops itself when the replica leaves service (crash,
        drain or retirement), so dead replicas do not keep firing no-op
        events; re-activation schedules a fresh loop.
        """
        replica_id = replica.replica_id
        if replica_id in self._pulls_scheduled:
            return
        self._pulls_scheduled.add(replica_id)

        def tick() -> None:
            if self.replicas.get(replica_id) is not replica:
                self._pulls_scheduled.discard(replica_id)
                return
            replica.pull_updates()
            self.sim.defer(self.config.propagation_interval_s, tick)

        self.sim.defer(self.config.propagation_interval_s, tick)

    def _fail_inflight(self, replica_id: int,
                       reason: str = "crash-in-flight") -> int:
        """Fail every transaction in flight at a (crashed) replica.

        The clients' completion callbacks run with ``committed=False`` so
        closed-loop clients immediately re-issue elsewhere.  ``reason`` feeds
        the abort-reason taxonomy ("crash-in-flight" or "drain-straggler");
        these failures are not certification aborts, so ``metrics.aborts``
        is untouched.  Returns the number of transactions failed.
        """
        pending = self._inflight.get(replica_id, {})
        failed = 0
        for done in list(pending.values()):
            done(False)
            failed += 1
        if failed:
            self.metrics.record_failure(reason, failed)
        return failed

    def _purge_replica_state(self, replica_id: int) -> None:
        """Drop the last traces of a replica that has fully left.

        Deactivation intentionally keeps the routing outstanding counter (so
        draining and crash-failing stay accountable); once the in-flight set
        is resolved, this clears the counter, any load sample the replica
        pushed before leaving, and its empty in-flight table, so no stale
        state can influence later routing decisions or linger in snapshots.
        """
        self.routing.purge_replica(replica_id)
        self._inflight.pop(replica_id, None)
        # Release any lag-notification dedup entry so a restored replica can
        # be notified again; the in-flight _Notification (if any) is
        # cancel-aware and fizzles when it lands.  The certifier's RPC dedup
        # cache is deliberately NOT purged: forgetting served request ids
        # would let a delayed duplicate request be re-certified.
        self._notify_pending.discard(replica_id)

    def notify_membership_changed(self) -> None:
        """Tell the balancer the replica set changed and re-push filters.

        Pending demand counters are drained first so a policy re-sizing its
        allocation to the new membership sees the mix up to this instant,
        exactly as per-dispatch accounting would have.
        """
        self._drain_mix_counts()
        self.balancer.on_membership_change()
        self._install_filters()

    # ------------------------------------------------------------------
    # Live membership (elasticity)
    # ------------------------------------------------------------------
    @property
    def membership(self) -> "MembershipManager":
        """The cluster's live-membership API (lazily constructed)."""
        if self._membership is None:
            from repro.elasticity.membership import MembershipManager
            self._membership = MembershipManager(self)
        return self._membership

    def add_replica(self) -> int:
        """Grow the cluster by one replica (cold cache, catches up from the log)."""
        return self.membership.add_replica()

    def remove_replica(self, replica_id: int, drain: bool = True) -> None:
        """Shrink the cluster, draining the replica's in-flight work first."""
        self.membership.remove_replica(replica_id, drain=drain)

    def crash_replica(self, replica_id: int) -> Replica:
        """Fail a replica abruptly; its in-flight transactions are lost."""
        return self.membership.crash_replica(replica_id)

    def restore_replica(self, replica_id: int) -> int:
        """Bring a crashed replica back; returns the writesets replayed."""
        return self.membership.restore_replica(replica_id)

    # ------------------------------------------------------------------
    # ClusterView protocol (what the load balancer may see)
    # ------------------------------------------------------------------
    def replica_ids(self) -> List[int]:
        return list(self.routing.replica_ids())

    def outstanding(self, replica_id: int) -> int:
        return self.routing.outstanding_of(replica_id)

    def load(self, replica_id: int) -> LoadSample:
        return self.monitor.load_of(replica_id)

    def replica_memory_bytes(self) -> int:
        return self.config.buffer_bytes

    def catalog(self) -> Catalog:
        return self._catalog

    def planner(self) -> QueryPlanner:
        return self._planner

    def workload(self) -> WorkloadSpec:
        return self._workload

    def workload_spec(self) -> WorkloadSpec:
        return self._workload

    # ------------------------------------------------------------------
    # Transaction flow
    # ------------------------------------------------------------------
    def _submit(self, txn_type: TransactionType, client_id: int,
                on_complete) -> None:
        replica_id = self.balancer.dispatch(txn_type)
        replica = self.replicas.get(replica_id)
        if replica is None:
            raise KeyError("balancer chose unknown replica %r" % (replica_id,))
        self.routing.on_dispatch(replica_id)
        if self._dispatch_hook is not None:
            self._dispatch_hook(replica_id, txn_type)
        token = self._inflight_token = self._inflight_token + 1
        pending = self._inflight[replica_id]
        done = _InFlight(self, pending, token, replica_id, txn_type, on_complete)
        pending[token] = done
        replica.submit(txn_type, self.sim.now, done)

    def _on_local_commit(self, origin: Replica) -> None:
        """Piggyback propagation: the committing replica is already up to date;
        other replicas receive the writeset at their next pull (within the
        propagation interval), mirroring the prototype's 500 ms pull plus
        lag-notification scheme.  A lag notification is a certifier-to-proxy
        message, so the pull it triggers pays the one-way notification
        latency instead of happening instantaneously at commit time --
        ``notification_latency_s == 0`` still goes through the event queue
        (a zero-delay defer), never through a synchronous pull inside the
        origin's commit processing.  At most one notification per replica is
        in flight: further commits before it lands would only tell the proxy
        what it is already about to learn.

        The replicas to notify come from the certifier's lag-subscription
        index: each proxy's cursor is bucketed by the version at which it
        crosses the notification threshold, so this costs O(notified), not
        O(replicas), per certification batch."""
        certifier = self.certifier
        crossed = certifier.subscriptions.crossed(certifier.current_version)
        if not crossed:
            return
        latency = self.config.proxy.notification_latency_s
        origin_id = origin.replica_id
        pending = self._notify_pending
        replicas = self.replicas
        stats = certifier.stats
        sim = self.sim
        for replica_id in crossed:
            if replica_id == origin_id or replica_id in pending:
                # The origin applies this batch's piggyback right after the
                # hook returns, and an in-flight notification's pull always
                # catches the replica up: either way the cursor advance
                # re-arms the subscription at the fresh lag target.
                continue
            replica = replicas.get(replica_id)
            if replica is None:
                continue
            stats.notifications_sent += 1
            pending.add(replica_id)
            # pull_updates checks liveness when the message lands, so a
            # replica that crashes in between simply drops it.
            note = _Notification(pending, replica)
            channel = replica.channel
            if channel is None:
                sim.defer(latency, note)
            else:
                # Notifications ride the same unreliable link as the RPCs;
                # a lost one releases its dedup entry at the drop decision
                # (note.drop), and the periodic pull backstops it anyway.
                channel.deliver(latency, note, on_drop=note.drop)

    def _install_filters(self) -> None:
        """Push the balancer's current update-filtering decision to the proxies."""
        for replica_id, replica in self.replicas.items():
            replica.proxy.set_filter(self.balancer.filter_tables(replica_id))

    def _drain_mix_counts(self) -> None:
        """Stream the generator's issue counters to the balancer in batch.

        The generator counts every issued transaction type with an integer
        bump; this folds the accumulated deltas into the balancer's demand
        estimate.  Called before every balancer tick and membership change,
        so a policy reading its estimate at those points sees exactly what
        per-dispatch accounting would have shown it.
        """
        counts = self.generator.drain_type_counts()
        if counts:
            self.balancer.ingest_mix_counts(counts)

    # ------------------------------------------------------------------
    # Certifier-log truncation
    # ------------------------------------------------------------------
    def certifier_truncation_floor(self) -> int:
        """Oldest version any current or returning replica could still need.

        The floor is the minimum over (a) the applied version of every
        replica that may yet pull or replay from the log -- in service,
        draining, or crashed but restorable -- and (b) the oldest snapshot
        of any in-flight transaction, because certification compares a
        writeset against everything committed since its snapshot.  Retired
        replicas never return and are excluded; membership churn from the
        elasticity subsystem is therefore respected by construction.
        """
        replicas = list(self.replicas.values())
        if self._membership is not None:
            replicas.extend(self._membership.returnable_replicas())
        if not replicas:
            return 0
        floor = min(replica.proxy.applied_version for replica in replicas)
        for replica in replicas:
            oldest = replica.engine.snapshots.oldest_active_snapshot()
            if oldest is not None and oldest < floor:
                floor = oldest
        return floor

    def truncate_certifier_log(self) -> int:
        """Drop certifier-log entries below the truncation floor.

        Called periodically (``log_truncation_interval_s``); safe to call at
        any time.  Returns the number of entries dropped.
        """
        floor = self.certifier_truncation_floor()
        if floor <= 0:
            return 0
        return self.certifier.truncate(floor)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _warm_replicas(self) -> None:
        """Pre-warm replica buffer pools to the steady state the policy targets.

        Memory-aware policies warm each replica with the relations of its
        transaction groups; baselines (which have no affinity) warm every
        replica with a proportional slice of the whole database.  This makes
        short simulated runs measure steady-state behaviour instead of the
        cold-start transient; the dynamic-reconfiguration experiment still
        pays realistic re-warming costs whenever the allocation changes.
        """
        for replica_id, replica in self.replicas.items():
            relations = self.balancer.preferred_relations(replica_id)
            if relations is None:
                relations = {r.name: r.size_bytes for r in self._catalog.relations()}
            total = float(sum(relations.values()))
            if total <= 0:
                continue
            capacity = float(replica.engine.buffer_pool.capacity_bytes)
            fraction = min(1.0, capacity / total)
            for name, size in relations.items():
                replica.engine.buffer_pool.warm(name, size * fraction)

    def start(self) -> None:
        """Schedule all periodic machinery and start the clients (idempotent)."""
        if self._started:
            return
        self._started = True
        # Let the balancer see a sample of the incoming mix so it can size
        # its allocation before the measurement starts, then warm the caches
        # to the steady state that allocation implies.
        preview = WorkloadGenerator(spec=self._workload, schedule=self.schedule,
                                    seed=self.config.seed + 7919)
        preview.sample_types(0.0, 2000)
        self.balancer.observe_mix(preview.drain_type_counts())
        if self.config.warm_start:
            self._warm_replicas()
        self.monitor.start()
        self.clients.start()
        # Update propagation: every replica pulls on the proxy's interval.
        for replica in self.replicas.values():
            self._schedule_pulls(replica)
        # Load-balancer periodic work (re-allocation, filter activation),
        # fed the demand counters accumulated since the previous tick.
        def balancer_tick() -> None:
            self._drain_mix_counts()
            self.balancer.periodic(self.sim.now)
            self._install_filters()

        self.sim.schedule_periodic(self.config.balancer_period_s, balancer_tick)
        # Certifier-log truncation: without it the log retains every
        # writeset ever certified, a memory leak on long runs.
        if self.config.log_truncation_interval_s > 0:
            self.sim.schedule_periodic(self.config.log_truncation_interval_s,
                                       lambda: self.truncate_certifier_log())

    def run(self, duration_s: float, warmup_s: float = 0.0) -> RunResult:
        """Run the simulation for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if warmup_s < 0 or warmup_s >= duration_s:
            raise ValueError("warmup must be shorter than the run")
        self.metrics.warmup_seconds = warmup_s
        self.start()
        self.sim.run_until(duration_s)
        return self.collect_result()

    def collect_result(self) -> RunResult:
        groupings: Dict[str, List[str]] = {}
        replica_counts: Dict[str, int] = {}
        if hasattr(self.balancer, "groupings"):
            groupings = self.balancer.groupings()           # type: ignore[attr-defined]
        if hasattr(self.balancer, "replica_counts"):
            replica_counts = self.balancer.replica_counts()  # type: ignore[attr-defined]
        return RunResult(
            policy=self.balancer.name,
            config=self.config,
            metrics=self.metrics,
            groupings=groupings,
            replica_counts=replica_counts,
            certifier_aborts=self.certifier.stats.aborts,
        )


def standalone_config(base: Optional[ClusterConfig] = None,
                      ram_bytes: int = mb(1024)) -> ClusterConfig:
    """Configuration for the "Single" standalone database reference point.

    One replica with the full 1 GB of machine memory and the same client
    intensity per replica as the clustered runs.
    """
    base = base or ClusterConfig()
    return replace(base, num_replicas=1, replica_ram_bytes=ram_bytes)
