"""Tashkent replication substrate: writesets, certifier, proxies, replicas, cluster."""

from repro.replication.certifier import (CertificationResult, Certifier,
                                         CertifierStats, LagSubscriptionIndex)
from repro.replication.cluster import (
    ClusterConfig,
    DEFAULT_MEMORY_OVERHEAD_BYTES,
    ReplicatedCluster,
    RunResult,
    standalone_config,
)
from repro.replication.proxy import AdmissionController, ProxyConfig, ReplicaProxy
from repro.replication.recovery import (
    ReplicatedCertifierLog,
    recover_replica,
    recovery_replay_plan,
)
from repro.replication.replica import Replica, TransactionContext
from repro.replication.sharding import (SHARD_RANGE_BITS, ShardRouter,
                                        ShardedCertifier)
from repro.replication.writeset import CertifiedWriteSet, WriteItem, WriteSet

__all__ = [
    "AdmissionController",
    "CertificationResult",
    "CertifiedWriteSet",
    "Certifier",
    "CertifierStats",
    "ClusterConfig",
    "DEFAULT_MEMORY_OVERHEAD_BYTES",
    "LagSubscriptionIndex",
    "ProxyConfig",
    "Replica",
    "ReplicaProxy",
    "ReplicatedCertifierLog",
    "ReplicatedCluster",
    "RunResult",
    "SHARD_RANGE_BITS",
    "ShardRouter",
    "ShardedCertifier",
    "TransactionContext",
    "WriteItem",
    "WriteSet",
    "recover_replica",
    "recovery_replay_plan",
    "standalone_config",
]
