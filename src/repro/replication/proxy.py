"""The replication proxy attached to each replica.

Tashkent is "pure replication middleware": a transparent proxy sits in front
of every database replica (Figure 1).  The proxy

* performs admission control with the Gatekeeper algorithm so bursts do not
  overload the database [ENTZ04],
* forwards certification requests to the certifier -- batched, with at most
  one round trip in flight per proxy -- and applies the remote writesets
  piggybacked on the response before committing or retrying,
* pulls new updates periodically (every 500 ms in the prototype) when the
  replica has been idle, and reacts to the certifier's lag notifications,
* and, for Tashkent+, stores the update-filtering table list and forwards
  only the writesets for those tables to the database (Section 4.2.3).

The proxy is deliberately free of simulator details; the
:class:`~repro.replication.replica.Replica` wires its decisions into the
event loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Optional, Set

if TYPE_CHECKING:
    from repro.replication.certifier import LagSubscriptionIndex


@dataclass
class ProxyConfig:
    """Proxy tunables.

    Attributes:
        max_concurrency: Gatekeeper limit on transactions concurrently inside
            the database; further arrivals queue in the proxy.
        pull_interval_s: how often an idle replica asks the certifier for new
            writesets (500 ms in the prototype).
        certification_latency_s: one round trip to the certifier (network +
            certification service time).
        max_certification_batch: how many certification requests one round
            trip may carry.  The proxy keeps at most one round trip in
            flight; update transactions reaching certification while it is
            outstanding join the next batch, sharing its latency.  1 sends
            every request on its own round trip (still serialized per
            proxy).
        notification_latency_s: one-way certifier-to-proxy latency of a lag
            notification; the pull it triggers is deferred by this much, so
            piggyback propagation is not free relative to the periodic pull.
        rpc_timeout_s: how long the proxy waits for a certification response
            before retransmitting the round trip.  Only consulted when the
            replica talks to the certifier over an unreliable
            :class:`~repro.net.channel.Channel`; the default direct path
            cannot lose messages and never times out.
        rpc_backoff_base_s: first retry delay of the capped exponential
            backoff (doubles per attempt, plus deterministic jitter).
        rpc_backoff_cap_s: upper bound on the retry delay.
        rpc_max_attempts: transmissions per round trip before the proxy
            declares the certifier unreachable and sheds the batched update
            transactions with ``certifier-unreachable`` aborts.  0 retries
            forever (the round trip outlives any partition).
        max_queued_certifications: bound on update transactions queued
            behind the in-flight round trip; overflow is shed immediately
            with ``certifier-unreachable``, keeping admission slots free for
            read-only transactions while the certifier is unreachable.
            0 is unbounded (the pre-RPC behaviour).
    """

    max_concurrency: int = 8
    pull_interval_s: float = 0.5
    certification_latency_s: float = 0.004
    max_certification_batch: int = 64
    notification_latency_s: float = 0.002
    rpc_timeout_s: float = 0.02
    rpc_backoff_base_s: float = 0.01
    rpc_backoff_cap_s: float = 0.5
    rpc_max_attempts: int = 0
    max_queued_certifications: int = 0

    def __post_init__(self) -> None:
        if self.max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if self.pull_interval_s <= 0:
            raise ValueError("pull_interval_s must be positive")
        if self.certification_latency_s < 0:
            raise ValueError("certification latency must be non-negative")
        if self.max_certification_batch <= 0:
            raise ValueError("max_certification_batch must be positive")
        if self.notification_latency_s < 0:
            raise ValueError("notification latency must be non-negative")
        if self.rpc_timeout_s <= 0:
            raise ValueError("rpc_timeout_s must be positive")
        if self.rpc_backoff_base_s < 0 or self.rpc_backoff_cap_s < 0:
            raise ValueError("RPC backoff delays must be non-negative")
        if self.rpc_backoff_cap_s < self.rpc_backoff_base_s:
            raise ValueError("rpc_backoff_cap_s must be >= rpc_backoff_base_s")
        if self.rpc_max_attempts < 0:
            raise ValueError("rpc_max_attempts cannot be negative")
        if self.max_queued_certifications < 0:
            raise ValueError("max_queued_certifications cannot be negative")


class AdmissionController:
    """Gatekeeper-style admission control: bounded in-database concurrency.

    The handoff is allocation-free: callers queue slotted *tasks* (anything
    with a no-argument ``start()`` method -- in practice the replica's
    ``TransactionContext``) rather than bound callables, so neither
    admission nor the release->admit handoff allocates.  ``queued`` is a
    maintained plain attribute, readable per dispatch (e.g. as a queueing
    pressure signal next to the routing table's outstanding counters)
    without touching the deque.
    """

    __slots__ = ("max_concurrency", "active", "queued", "_waiting",
                 "admitted_total", "queued_total")

    def __init__(self, max_concurrency: int) -> None:
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        self.max_concurrency = max_concurrency
        self.active = 0
        self.queued = 0
        self._waiting: Deque = deque()
        self.admitted_total = 0
        self.queued_total = 0

    def admit(self, task) -> None:
        """Start ``task`` now if a slot is free, otherwise queue it (FIFO)."""
        if self.active < self.max_concurrency:
            self.active += 1
            self.admitted_total += 1
            task.start()
        else:
            self.queued_total += 1
            self.queued += 1
            self._waiting.append(task)

    def release(self) -> None:
        """A transaction finished: free its slot and admit the next waiter.

        The release->admit handoff is inlined: when somebody is waiting the
        slot is passed straight to the head of the queue (``active`` never
        dips and re-climbs), which is both cheaper and preserves the
        invariant that the queue is non-empty only while every slot is
        taken.
        """
        if self.active <= 0:
            raise RuntimeError("release() without a matching admit()")
        if self.queued:
            self.queued -= 1
            self.admitted_total += 1
            self._waiting.popleft().start()
        else:
            self.active -= 1


class ReplicaProxy:
    """Per-replica middleware state: admission, filtering, propagation cursor."""

    __slots__ = ("replica_id", "config", "admission", "filter_tables",
                 "applied_version", "writesets_applied", "writesets_filtered",
                 "lag_index", "shard_cursors")

    def __init__(self, replica_id: int, config: Optional[ProxyConfig] = None) -> None:
        self.replica_id = replica_id
        self.config = config or ProxyConfig()
        self.admission = AdmissionController(self.config.max_concurrency)
        #: The certifier's lag-subscription index (installed by the replica):
        #: every cursor advance re-arms this proxy's notify-at version there,
        #: so commit batches find lagging replicas without scanning.  None
        #: for a standalone proxy outside a cluster.
        self.lag_index: Optional["LagSubscriptionIndex"] = None
        # Update filtering: the single source of truth for which tables'
        # writesets reach the database.  None means apply everything; a set
        # means apply only those tables.  The predicate is evaluated per
        # item by ``engine.apply_writesets_fast`` (which also drops tables
        # in ``dropped_tables``); nothing else re-implements it.
        self.filter_tables: Optional[Set[str]] = None
        # Versions applied so far (update-propagation cursor).
        self.applied_version = 0
        #: Per-shard position cursors into a sharded certifier's partitioned
        #: log, or None.  Armed by the replica on its first vector pull
        #: (when the certifier is sharded) and advanced with each pull;
        #: invalidated (set back to None) whenever the proxy applies
        #: writesets that arrived outside the vector path -- a piggybacked
        #: response or a recovery replay -- since those move
        #: ``applied_version`` without moving the per-shard positions.
        self.shard_cursors: Optional[list] = None
        self.writesets_applied = 0
        self.writesets_filtered = 0

    # ------------------------------------------------------------------
    # Update filtering
    # ------------------------------------------------------------------
    def set_filter(self, tables: Optional[Set[str]]) -> None:
        """Install (or clear) the update-filtering table list."""
        self.filter_tables = set(tables) if tables is not None else None

    # ------------------------------------------------------------------
    # Propagation bookkeeping
    # ------------------------------------------------------------------
    def advance(self, version: int) -> None:
        if version > self.applied_version:
            self.applied_version = version
            # Any cursor advance invalidates the per-shard positions (they
            # no longer correspond to applied_version); the vector pull
            # re-arms them from its own returned positions afterwards.
            self.shard_cursors = None
            index = self.lag_index
            if index is not None:
                index.advanced(self.replica_id, version)

    @property
    def filtering_enabled(self) -> bool:
        return self.filter_tables is not None
