"""One database replica: engine + proxy + CPU/disk resources + GSI commit path.

The replica wires the storage engine's resource demands into the event loop.
Each transaction is tracked by a slotted :class:`TransactionContext` that
moves through an explicit lifecycle::

    ADMITTED -> CPU -> READS -> CERTIFYING -> DONE

* a transaction admitted by the proxy executes against the local buffer
  pool, queues for the CPU, then queues for the disk channel to read its
  misses (ADMITTED -> CPU -> READS);
* read-only transactions then commit locally (GSI lets them run entirely at
  the replica, Section 4.1);
* update transactions enter CERTIFYING: the proxy batches certification
  requests, keeping at most one round trip to the certifier outstanding.
  Update transactions that reach certification while a round trip is in
  flight join the next batch, so concurrent updates share the
  ``certification_latency_s`` they would each have paid alone
  (Sections 3.2/4.2);
* the certification response piggybacks every writeset committed since the
  replica's applied version.  The proxy applies those *before* delivering
  outcomes, so a committed transaction leaves the replica current and an
  aborted transaction retries against a fresh snapshot instead of burning
  its retries on the same stale one while waiting for the 500 ms pull;
* on commit the dirty pages are handed to the background writer (no fsync
  on the commit path -- Tashkent unites durability with ordering in the
  middleware), and the cluster propagates the writeset to the other
  replicas;
* remote writesets arriving through update propagation are applied as
  background CPU and disk work, competing with the replica's foreground
  transactions for the same resources -- the contention update filtering
  removes.

Every continuation is fenced by the replica's epoch: a crash bumps the
epoch, so continuations (CPU/disk completions, the certification round
trip) scheduled before the crash are dropped when they fire.

When the replica is built with an unreliable ``channel``
(:class:`~repro.net.channel.Channel`), the certification round trip runs as
an *at-least-once RPC*: each batch gets a per-proxy monotonically
increasing request id, is retransmitted on timeout with capped exponential
backoff and deterministic jitter, and is answered idempotently by the
certifier's dedup cache (:meth:`~repro.replication.certifier.Certifier.\
certify_rpc`), so duplication and retries never certify a writeset twice.
While the certifier is unreachable the proxy sheds overflowing update
transactions with ``certifier-unreachable`` aborts -- read-only
transactions keep committing from the local snapshot, the GSI-faithful
degradation.  Without a channel (the default) the round trip is the exact
single ``sim.defer`` it always was, preserving seeded outputs bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.obs.trace import CERTIFY, CPU, QUEUE, READS, STAGE_NAMES, TxnTrace
from repro.replication.certifier import Certifier
from repro.replication.proxy import AdmissionController, ProxyConfig, ReplicaProxy
from repro.replication.writeset import CertifiedWriteSet
from repro.sim.metrics import MetricsCollector
from repro.sim.resources import ReplicaResources
from repro.sim.simulator import Simulator
from repro.storage.disk import DiskModel
from repro.storage.engine import DatabaseEngine, TransactionWork
from repro.workloads.spec import TransactionType

if TYPE_CHECKING:
    from repro.obs.hub import ObservabilityHub

# Callback invoked when a submitted transaction finishes (committed=True/False).
CompletionCallback = Callable[[bool], None]


class TransactionContext:
    """The slotted lifecycle state of one transaction at a replica.

    Replaces the former per-transaction closure chain: the context is
    allocated once at submission and reused across retries (a retry re-runs
    the pipeline with a fresh snapshot but keeps the context, its admission
    slot and its attempt counter).  Stage continuations are bound methods on
    this object, so the steady-state transaction path allocates one context
    per transaction instead of a closure per stage per attempt.
    """

    ADMITTED = 0
    CPU = 1
    READS = 2
    CERTIFYING = 3
    DONE = 4

    __slots__ = ("replica", "txn_type", "submitted_at", "on_done", "attempt",
                 "state", "epoch", "txn_id", "snapshot", "work", "writeset",
                 "trace")

    def __init__(self, replica: "Replica", txn_type: TransactionType,
                 submitted_at: float, on_done: CompletionCallback) -> None:
        self.replica = replica
        self.txn_type = txn_type
        self.submitted_at = submitted_at
        self.on_done = on_done
        self.attempt = 1
        self.state = TransactionContext.ADMITTED
        self.epoch = replica.epoch
        self.txn_id = 0
        self.snapshot = 0
        self.work: Optional[TransactionWork] = None
        self.writeset = None
        # Per-transaction trace state; None unless an ObservabilityHub with
        # a tracer is attached (the zero-overhead fast path).
        self.trace: Optional[TxnTrace] = None

    # Stage continuations (scheduled on resources / the event queue) -------
    def start(self) -> None:
        """Admission-controller callback: the transaction got its slot."""
        self.replica._start(self)

    def after_cpu(self) -> None:
        replica = self.replica
        if replica.epoch != self.epoch:
            return
        self.state = TransactionContext.READS
        if self.trace is not None:
            replica._trace_lap(self, CPU)
        work = self.work
        read_time = replica.disk_model.read_seconds(
            work.random_read_bytes, work.sequential_read_bytes
        )
        if read_time > 0:
            replica.resources.disk.acquire(read_time, self.after_reads)
        else:
            self.after_reads()

    def after_reads(self) -> None:
        replica = self.replica
        if replica.epoch != self.epoch:
            return
        if self.trace is not None:
            replica._trace_lap(self, READS)
        if self.writeset is None:
            replica._finish(self, committed=True)
            return
        self.state = TransactionContext.CERTIFYING
        replica._enqueue_certification(self)


class Replica:
    """A single database replica participating in the replicated cluster."""

    def __init__(self, replica_id: int, sim: Simulator, engine: DatabaseEngine,
                 resources: ReplicaResources, certifier: Certifier,
                 disk_model: Optional[DiskModel] = None,
                 proxy_config: Optional[ProxyConfig] = None,
                 max_retries: int = 3, channel=None) -> None:
        self.replica_id = replica_id
        self.sim = sim
        self.engine = engine
        self.resources = resources
        self.certifier = certifier
        self.disk_model = disk_model or DiskModel()
        self.proxy = ReplicaProxy(replica_id, proxy_config)
        # Every cursor advance re-arms this replica's entry in the
        # certifier's lag-subscription index, which is how commit batches
        # find lagging replicas without scanning the cluster.
        self.proxy.lag_index = getattr(certifier, "subscriptions", None)
        self.max_retries = max_retries
        self.metrics: Optional[MetricsCollector] = None
        # Observability hub (tracer + telemetry registry); None keeps every
        # instrumentation site on the no-op fast path, same contract as
        # ``metrics``.  Installed by ObservabilityHub.instrument_replica.
        self.obs: Optional["ObservabilityHub"] = None
        # Hook installed by the cluster: called once per certification batch
        # that committed at least one transaction, so the writesets (already
        # in the certifier's log) are propagated to the other replicas.
        self.on_local_commit: Optional[Callable[["Replica"], None]] = None
        self._next_txn_id = 0
        self.completed = 0
        self.committed_updates = 0
        self.aborted = 0
        # Per-proxy certification batching: transactions that reached
        # CERTIFYING and are waiting for the next round trip, plus whether a
        # round trip is currently in flight.
        self._cert_queue: List[TransactionContext] = []
        self._cert_inflight = False
        # Unreliable-network mode (repro.net): the channel this replica's
        # certification RPCs, pulls and notifications travel over.  None --
        # the default -- keeps the direct, loss-free defer path.
        self.channel = channel
        # At-least-once RPC state: ids are per-proxy monotonic and *never*
        # reset (not even across crash/restore), so the certifier's dedup
        # cache can tell a fresh request from a wandering retransmission.
        self._next_request_id = 0
        self._rpc_request_id = 0
        self._rpc_attempt = 0
        self._rpc_batch: Optional[List[TransactionContext]] = None
        self._rpc_requests = None
        self.rpc_timeouts = 0
        self.rpc_retries = 0
        self.rpc_stale_responses = 0
        self.shed_unreachable = 0
        # Consistency audit (repro.net.invariants): {version: times this
        # replica was handed that committed writeset}.  None -- the default
        # -- keeps the apply path free of ledger bookkeeping; the floor
        # exempts a prefix restored out-of-band during recovery.
        self.apply_ledger: Optional[dict] = None
        self.apply_ledger_floor = 0
        # Elasticity: a replica can crash mid-run and be restored later.
        # The epoch fences continuations of transactions that were in flight
        # when the crash happened: events from an older epoch are dropped.
        self.alive = True
        self.epoch = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------
    def submit(self, txn_type: TransactionType, submitted_at: float,
               on_done: CompletionCallback) -> None:
        """Accept a transaction from the load balancer."""
        if not self.alive:
            raise RuntimeError("replica %d is not alive" % (self.replica_id,))
        ctx = TransactionContext(self, txn_type, submitted_at, on_done)
        obs = self.obs
        if obs is not None and obs.tracer is not None:
            ctx.trace = TxnTrace(submitted_at)
        self.proxy.admission.admit(ctx)

    def _start(self, ctx: TransactionContext) -> None:
        """Run (or re-run, on retry) the execution pipeline of ``ctx``."""
        if not self.alive:
            # Crashed between admission and start (or before a retry); the
            # cluster has already failed the transaction's callback.
            return
        ctx.epoch = self.epoch
        ctx.state = TransactionContext.CPU
        ctx.txn_id = self._next_txn_id = self._next_txn_id + 1
        ctx.snapshot = self.engine.snapshots.begin(ctx.txn_id)
        trace = ctx.trace
        if trace is not None:
            # First attempt: the lap covers admission queueing.  Retries:
            # zero-length (the retry starts in the same event as the abort),
            # recorded anyway so every attempt shows in the trace.
            if trace.txn_id == 0:
                trace.txn_id = ctx.txn_id
            trace.attempts = ctx.attempt
            self._trace_lap(ctx, QUEUE)
        ctx.work, ctx.writeset = self.engine.execute(ctx.txn_type)
        cpu_time = ctx.work.cpu_seconds
        if cpu_time > 0:
            self.resources.cpu.acquire(cpu_time, ctx.after_cpu)
        else:
            ctx.after_cpu()

    # ------------------------------------------------------------------
    # Certification (batched per proxy)
    # ------------------------------------------------------------------
    def _enqueue_certification(self, ctx: TransactionContext) -> None:
        """Queue ``ctx`` for the next certification round trip.

        The proxy keeps at most one round trip to the certifier in flight;
        everything that reaches certification while one is outstanding is
        sent together when the next one departs, amortizing the round-trip
        latency and the per-transaction event-queue traffic.

        When a round trip is outstanding and the queue behind it is bounded
        (``max_queued_certifications``, the graceful-degradation knob),
        overflow is shed immediately as ``certifier-unreachable`` instead of
        piling up behind a round trip that may be retrying into a partition.
        """
        if self._cert_inflight:
            bound = self.proxy.config.max_queued_certifications
            if bound and len(self._cert_queue) >= bound:
                self._shed_certification(ctx)
                return
            self._cert_queue.append(ctx)
            return
        self._cert_queue.append(ctx)
        self._dispatch_certification()

    def _dispatch_certification(self) -> None:
        """Send one batched certification round trip (up to the batch limit)."""
        config = self.proxy.config
        limit = config.max_certification_batch
        queue = self._cert_queue
        batch = queue[:limit]
        del queue[:limit]
        self._cert_inflight = True
        epoch = self.epoch
        if self.channel is None:
            self.sim.defer(config.certification_latency_s,
                           lambda: self._complete_certification(batch, epoch))
            return
        # RPC path: build the request writesets once, at dispatch.  Retries
        # resend the very same objects, which is what lets the consistency
        # checker detect a double certification as the same writeset object
        # appearing twice in the log.
        self._next_request_id += 1
        self._rpc_request_id = self._next_request_id
        self._rpc_attempt = 0
        self._rpc_batch = batch
        self._rpc_requests = self._build_requests(batch)
        self._send_rpc_attempt(epoch)

    def _build_requests(self, batch: List[TransactionContext]) -> list:
        """The certification request list for one batch (FIFO order)."""
        replica_id = self.replica_id
        requests = []
        for ctx in batch:
            writeset = ctx.writeset
            requests.append((writeset.__class__(
                transaction_type=writeset.transaction_type,
                items=writeset.items,
                origin_replica=replica_id,
                snapshot_version=ctx.snapshot,
            ), ctx.snapshot))
        return requests

    def _complete_certification(self, batch: List[TransactionContext],
                                epoch: int) -> None:
        """The direct (loss-free) round trip returned: certify and deliver.

        The requests are certified in FIFO order, so commit versions respect
        the order in which this proxy's transactions reached certification.
        """
        if self.epoch != epoch or not self.alive:
            # The replica crashed while the round trip was in flight.  The
            # batched transactions die uncertified; their admission slots
            # went down with the crashed controller, so dropping the batch
            # leaks nothing.  crash() reset the batcher for the next epoch.
            return
        requests = self._build_requests(batch)
        results, piggyback = self.certifier.certify_batch(
            requests, since_version=self.proxy.applied_version, now=self.sim.now)
        self._deliver_certification(batch, results, piggyback)

    def _deliver_certification(self, batch: List[TransactionContext],
                               results, piggyback) -> None:
        """Apply one round trip's outcome: piggyback, commits, aborts, next batch.

        The response carries every writeset committed since the proxy's
        applied version (including this batch's own commits); applying them
        before delivering outcomes means committed transactions leave the
        replica current and aborted ones retry on a fresh snapshot.
        """
        proxy = self.proxy
        replica_id = self.replica_id
        obs = self.obs
        tracer = obs.tracer if obs is not None else None
        if tracer is not None:
            latency = proxy.config.certification_latency_s
            commits = sum(1 for result in results if result.committed)
            tracer.span("cert-roundtrip", "certification",
                        self.sim.now - latency, latency, replica_id, 0,
                        args={"batch": len(results), "commits": commits,
                              "aborts": len(results) - commits,
                              "piggybacked": len(piggyback)})
        committed_any = False
        for i, result in enumerate(results):
            if result.committed:
                # Dirty pages go to the background writer; the transaction
                # does not wait for them (durability lives in the middleware).
                write_time = self.disk_model.write_seconds(batch[i].work.write_bytes)
                if write_time > 0:
                    self.resources.disk.add_background_work(write_time)
                self.committed_updates += 1
                committed_any = True
        if committed_any and self.on_local_commit is not None:
            # One notification covers the whole batch: every commit is
            # already registered at the certifier before the hook runs.
            self.on_local_commit(self)
        if piggyback:
            # Writesets missed since our snapshot, piggybacked on the
            # certification response (Section 4.2).  This also advances the
            # applied cursor past this batch's own commits.
            self.apply_remote_writesets(piggyback)
        for i, result in enumerate(results):
            ctx = batch[i]
            trace = ctx.trace
            if trace is not None:
                self._trace_lap(ctx, CERTIFY)
            if result.committed:
                self._finish(ctx, committed=True)
            else:
                self.aborted += 1
                retrying = ctx.attempt < self.max_retries
                reason = "certification-conflict" if retrying else "retry-exhausted"
                if self.metrics is not None:
                    self.metrics.record_abort(reason)
                if trace is not None:
                    tracer.instant("abort", "txn", self.sim.now, replica_id,
                                   trace.txn_id,
                                   args={"reason": reason,
                                         "attempt": ctx.attempt})
                self.engine.snapshots.finish(ctx.txn_id)
                if retrying:
                    # Retry immediately on the same replica, keeping the
                    # admission slot; the piggybacked writesets were applied
                    # above, so the retry begins at a fresh snapshot.
                    ctx.attempt += 1
                    self._start(ctx)
                else:
                    self._finish(ctx, committed=False, already_closed=True)
        if self._cert_queue:
            # More transactions reached certification while this round trip
            # was in flight: they depart together as the next batch.
            self._dispatch_certification()
        else:
            self._cert_inflight = False

    # ------------------------------------------------------------------
    # At-least-once certification RPC (channel mode only)
    # ------------------------------------------------------------------
    def _send_rpc_attempt(self, epoch: int) -> None:
        """Transmit the current round trip (first send or a retry).

        Both legs travel over the channel: the request leg runs the
        certifier-side handler (which answers duplicates from its dedup
        cache), the response leg delivers the decision back here.  A timeout
        armed alongside the send drives the retransmission; it is
        invalidated by whichever of {response, newer attempt, crash} happens
        first.
        """
        self._rpc_attempt += 1
        attempt = self._rpc_attempt
        request_id = self._rpc_request_id
        requests = self._rpc_requests
        config = self.proxy.config
        one_way = config.certification_latency_s / 2.0
        channel = self.channel
        certifier = self.certifier

        def at_certifier() -> None:
            results, piggyback = certifier.certify_rpc(
                self.replica_id, request_id, requests,
                since_version=self.proxy.applied_version, now=self.sim.now)
            if results is None:
                # Stale retransmission from a round trip this proxy has
                # already resolved; the certifier refused to re-certify it.
                return
            channel.deliver(one_way, lambda: self._rpc_response(
                request_id, results, piggyback, epoch))

        self.sim.defer(config.rpc_timeout_s,
                       lambda: self._rpc_timeout(request_id, attempt, epoch))
        channel.deliver(one_way, at_certifier)

    def _rpc_response(self, request_id: int, results, piggyback,
                      epoch: int) -> None:
        """A certification response arrived (possibly late or duplicated)."""
        if self.epoch != epoch or not self.alive:
            return
        if not self._cert_inflight or request_id != self._rpc_request_id:
            # Response to an abandoned round trip, or a duplicate of one
            # already delivered: the decision was (or will be) honoured by
            # the copy that won the race.
            self.rpc_stale_responses += 1
            obs = self.obs
            if obs is not None:
                obs.rpc_event(self.replica_id, "stale-response", self.sim.now,
                              {"request_id": request_id})
            return
        batch = self._rpc_batch
        self._rpc_batch = None
        self._rpc_requests = None
        self._deliver_certification(batch, results, piggyback)

    def _rpc_timeout(self, request_id: int, attempt: int, epoch: int) -> None:
        """No response within ``rpc_timeout_s``: back off and retransmit."""
        if self.epoch != epoch or not self.alive:
            return
        if not self._cert_inflight or request_id != self._rpc_request_id:
            return      # the response made it; this timer is stale
        if attempt != self._rpc_attempt:
            return      # a newer attempt is out with its own timer
        self.rpc_timeouts += 1
        obs = self.obs
        if obs is not None:
            obs.rpc_event(self.replica_id, "timeout", self.sim.now,
                          {"request_id": request_id, "attempt": attempt})
        config = self.proxy.config
        if config.rpc_max_attempts and attempt >= config.rpc_max_attempts:
            # Certifier declared unreachable: shed the batch so the
            # admission slots it holds go back to (read-only) transactions
            # that can still make progress locally.
            self._abandon_certification()
            return
        self.rpc_retries += 1
        self.sim.defer(self._backoff_delay(attempt, request_id),
                       lambda: self._rpc_retry(request_id, attempt, epoch))

    def _rpc_retry(self, request_id: int, attempt: int, epoch: int) -> None:
        """The backoff elapsed: retransmit unless the round trip resolved."""
        if self.epoch != epoch or not self.alive:
            return
        if not self._cert_inflight or request_id != self._rpc_request_id:
            return
        if attempt != self._rpc_attempt:
            return
        obs = self.obs
        if obs is not None:
            obs.rpc_event(self.replica_id, "retry", self.sim.now,
                          {"request_id": request_id, "attempt": attempt + 1})
        self._send_rpc_attempt(epoch)

    def _backoff_delay(self, attempt: int, request_id: int) -> float:
        """Capped exponential backoff with deterministic jitter.

        The jitter decorrelates the proxies' retry storms after a shared
        partition heals without consuming any RNG stream (seeded outputs of
        fault-free channel runs stay reproducible): a hash of (request id,
        replica id, attempt) spreads delays over [delay, 1.25 * delay).
        """
        config = self.proxy.config
        delay = config.rpc_backoff_base_s * (2 ** (attempt - 1))
        cap = config.rpc_backoff_cap_s
        if delay > cap:
            delay = cap
        mix = (request_id * 2654435761) ^ (self.replica_id * 40503) ^ attempt
        return delay * (1.0 + (mix % 1024) / 4096.0)

    def _abandon_certification(self) -> None:
        """Shed the in-flight batch: the certifier is unreachable.

        Its certification state is discarded *before* the contexts finish so
        a freed admission slot cannot race with it; if more updates queued
        behind the abandoned round trip, the next batch departs immediately
        (its own retries will probe the link).
        """
        batch = self._rpc_batch
        self._rpc_batch = None
        self._rpc_requests = None
        for ctx in batch:
            self._shed_certification(ctx)
        if self._cert_queue:
            self._dispatch_certification()
        else:
            self._cert_inflight = False

    def _shed_certification(self, ctx: TransactionContext) -> None:
        """Fail one update transaction with ``certifier-unreachable``.

        Not a certification abort (the certifier never saw it), so the
        golden-pinned ``aborts`` counter is untouched; the failure lands in
        the abort-reason taxonomy and the client re-issues.  Read-only
        transactions never pass through here -- they keep committing from
        the local snapshot while the link is down.
        """
        self.shed_unreachable += 1
        if self.metrics is not None:
            self.metrics.record_failure("certifier-unreachable")
        obs = self.obs
        if obs is not None:
            obs.rpc_event(self.replica_id, "shed", self.sim.now,
                          {"txn_id": ctx.txn_id})
            if ctx.trace is not None:
                obs.tracer.instant("abort", "txn", self.sim.now,
                                   self.replica_id, ctx.trace.txn_id,
                                   args={"reason": "certifier-unreachable",
                                         "attempt": ctx.attempt})
        self.engine.snapshots.finish(ctx.txn_id)
        self._finish(ctx, committed=False, already_closed=True)

    def _finish(self, ctx: TransactionContext, committed: bool,
                already_closed: bool = False) -> None:
        ctx.state = TransactionContext.DONE
        if ctx.trace is not None:
            self._trace_finish(ctx, committed)
        if not already_closed:
            self.engine.snapshots.finish(ctx.txn_id)
        self.completed += 1
        if self.metrics is not None and committed:
            now = self.sim.now
            work = ctx.work
            self.metrics.record_completion(
                now, ctx.txn_type.name, self.replica_id, now - ctx.submitted_at,
                ctx.txn_type.is_update, work.read_bytes,
                self.disk_model.effective_write_bytes(work.write_bytes),
            )
        self.proxy.admission.release()
        ctx.on_done(committed)

    # ------------------------------------------------------------------
    # Tracing (no-ops unless an ObservabilityHub armed ``ctx.trace``)
    # ------------------------------------------------------------------
    def _trace_lap(self, ctx: TransactionContext, stage: int) -> None:
        """Close the trace's current stage at ``now`` and emit its span.

        Unguarded by design: every call site checks ctx.trace/self.obs
        before entering, keeping this helper branch-free on the traced
        path -- which O2 proves interprocedurally.
        """
        trace = ctx.trace
        now = self.sim.now
        start = trace.lap(stage, now)
        self.obs.tracer.span(STAGE_NAMES[stage], "stage",
                             start, now - start,
                             self.replica_id, trace.txn_id,
                             args={"attempt": ctx.attempt})

    def _trace_finish(self, ctx: TransactionContext, committed: bool) -> None:
        """Record the finished transaction's histograms and summary span.

        Only transactions that reach ``_finish`` are recorded (crash- or
        drain-abandoned ones never do), so the per-stage histograms
        sum-reconcile with the end-to-end latency histogram: the stage laps
        telescope from ``submitted_at`` to the finish instant.
        """
        trace = ctx.trace
        now = self.sim.now
        total = now - ctx.submitted_at
        tracer = self.obs.tracer
        tracer.stages.record_txn(trace.stage_seconds, total)
        tracer.span("txn", "txn", ctx.submitted_at, total, self.replica_id,
                    trace.txn_id,
                    args={"type": ctx.txn_type.name, "committed": committed,
                          "attempts": ctx.attempt})

    # ------------------------------------------------------------------
    # Crash / restore (elasticity)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail the replica: in-flight transactions are abandoned.

        The epoch bump fences every continuation already in the event queue,
        including the in-flight certification round trip; the admission
        controller is rebuilt so queued-but-unstarted work is discarded, and
        the certification batcher is reset (its queued contexts die with
        their admission slots).  Durable state (the applied-version cursor)
        survives, as it would on disk; the page cache is cleared by
        recovery.  Idempotent while down.
        """
        if not self.alive:
            return
        self.alive = False
        self.epoch += 1
        self.crashes += 1
        self.proxy.admission = AdmissionController(self.proxy.config.max_concurrency)
        self._cert_queue = []
        self._cert_inflight = False
        # The in-flight RPC batch dies with its admission slots; its timers
        # and late responses are fenced by the epoch.  Request ids stay
        # monotonic so post-restore round trips cannot look stale.
        self._rpc_batch = None
        self._rpc_requests = None
        self.engine.snapshots.abort_open()

    # ------------------------------------------------------------------
    # Update propagation
    # ------------------------------------------------------------------
    def apply_remote_writesets(self, entries: Sequence[CertifiedWriteSet]) -> None:
        """Apply a batch of committed writesets from the certifier.

        Writesets originating at this replica are skipped (their effects are
        already local); the rest are applied subject to the proxy's update
        filter (``proxy.filter_tables``, the single source of filtering
        truth, evaluated per item by the engine).  The buffer-pool effects,
        CPU time, disk service time and background-I/O accounting are all
        aggregated over the batch (per relation, by
        ``engine.apply_writesets_fast``) and charged once -- a pull that
        returns dozens of writesets used to pay per-entry resource
        bookkeeping, which showed up as a hot path on paper-scale runs.
        """
        proxy = self.proxy
        engine = self.engine
        replica_id = self.replica_id
        ledger = self.apply_ledger
        to_apply = None
        applied_version = proxy.applied_version
        for entry in entries:
            version = entry.version
            if version <= applied_version:
                continue
            writeset = entry.writeset
            if writeset.origin_replica != replica_id:
                if ledger is not None:
                    # Consistency audit: count the delivery before filtering
                    # (the checker verifies exactly-once *delivery*; what
                    # the filter then drops is policy, not loss).
                    ledger[version] = ledger.get(version, 0) + 1
                if to_apply is None:
                    to_apply = [writeset]
                else:
                    to_apply.append(writeset)
            applied_version = version
        if to_apply is not None:
            disk_model = self.disk_model
            cpu_seconds, read_bytes, write_bytes, applications, filtered = \
                engine.apply_writesets_fast(to_apply, proxy.filter_tables)
            if applications:
                proxy.writesets_applied += applications
            if filtered:
                proxy.writesets_filtered += filtered
            io_seconds = disk_model.read_seconds(read_bytes, 0.0) \
                + disk_model.write_seconds(write_bytes)
            if cpu_seconds > 0:
                self.resources.cpu.add_background_work(cpu_seconds)
            if io_seconds > 0:
                self.resources.disk.add_background_work(io_seconds)
            if self.metrics is not None and (read_bytes > 0 or write_bytes > 0):
                self.metrics.record_background_io(
                    time=self.sim.now,
                    replica_id=replica_id,
                    read_bytes=read_bytes,
                    write_bytes=disk_model.effective_write_bytes(write_bytes),
                )
        if applied_version > proxy.applied_version:
            # Cursors are committed once per batch; versions inside a batch
            # ascend, so the final advance is equivalent to per-entry ones.
            proxy.advance(applied_version)
            engine.snapshots.advance(applied_version)

    def pull_updates(self, trigger: str = "periodic") -> int:
        """Fetch and apply all writesets committed since our applied version.

        Returns the number of writesets fetched.  Called periodically (the
        prototype pulls every 500 ms when idle) and by the certifier's lag
        notifications (``trigger="notification"``, used by the telemetry
        pull-source breakdown).  A crashed or retired replica pulls nothing.
        """
        if not self.alive:
            return 0
        channel = self.channel
        if channel is not None and not channel.pull_allowed():
            # Partitioned or the exchange was lost; the periodic pull loop
            # is the retry, so nothing further to arrange.
            return 0
        proxy = self.proxy
        certifier = self.certifier
        if getattr(certifier, "num_shards", 1) > 1:
            # Sharded certifier: pull through per-shard position cursors
            # (the partitioned-log path; per-shard suffixes merged back
            # into global order by commit version).  Cursors are armed
            # lazily from the scalar applied version and re-armed from the
            # pull's returned positions -- any apply outside this path
            # (piggybacked responses, recovery replays) invalidates them.
            cursors = proxy.shard_cursors
            if cursors is None:
                cursors = certifier.cursor_positions(proxy.applied_version)
            entries, new_cursors = certifier.writesets_since_sharded(cursors)
            if entries:
                self.apply_remote_writesets(entries)
            proxy.shard_cursors = new_cursors
        else:
            entries = certifier.writesets_since(proxy.applied_version)
            if entries:
                self.apply_remote_writesets(entries)
        obs = self.obs
        if obs is not None:
            obs.record_pull(self.replica_id, trigger, len(entries), self.sim.now)
        return len(entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lag(self) -> int:
        return self.certifier.current_version - self.proxy.applied_version

    def describe(self) -> str:
        return "replica %d: completed=%d updates=%d aborted=%d lag=%d" % (
            self.replica_id, self.completed, self.committed_updates, self.aborted, self.lag
        )
