"""One database replica: engine + proxy + CPU/disk resources + GSI commit path.

The replica wires the storage engine's resource demands into the event loop:

* a transaction admitted by the proxy executes against the local buffer pool,
  queues for the CPU, then queues for the disk channel to read its misses;
* read-only transactions then commit locally (GSI lets them run entirely at
  the replica, Section 4.1);
* update transactions pay one round trip to the certifier; on success their
  dirty pages are handed to the background writer (no fsync on the commit
  path -- Tashkent unites durability with ordering in the middleware), and
  the cluster propagates the writeset to the other replicas;
* remote writesets arriving through update propagation are applied as
  background CPU and disk work, competing with the replica's foreground
  transactions for the same resources -- the contention update filtering
  removes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.replication.certifier import Certifier
from repro.replication.proxy import AdmissionController, ProxyConfig, ReplicaProxy
from repro.replication.writeset import CertifiedWriteSet
from repro.sim.metrics import MetricsCollector
from repro.sim.resources import ReplicaResources
from repro.sim.simulator import Simulator
from repro.storage.disk import DiskModel
from repro.storage.engine import DatabaseEngine, TransactionWork
from repro.workloads.spec import TransactionType

# Callback invoked when a submitted transaction finishes (committed=True/False).
CompletionCallback = Callable[[bool], None]


class Replica:
    """A single database replica participating in the replicated cluster."""

    def __init__(self, replica_id: int, sim: Simulator, engine: DatabaseEngine,
                 resources: ReplicaResources, certifier: Certifier,
                 disk_model: Optional[DiskModel] = None,
                 proxy_config: Optional[ProxyConfig] = None,
                 max_retries: int = 3) -> None:
        self.replica_id = replica_id
        self.sim = sim
        self.engine = engine
        self.resources = resources
        self.certifier = certifier
        self.disk_model = disk_model or DiskModel()
        self.proxy = ReplicaProxy(replica_id, proxy_config)
        self.max_retries = max_retries
        self.metrics: Optional[MetricsCollector] = None
        # Hook installed by the cluster: called after a successful local
        # commit so the writeset is propagated to the other replicas.
        self.on_local_commit: Optional[Callable[["Replica", CertifiedWriteSet], None]] = None
        self._next_txn_id = 0
        self.completed = 0
        self.committed_updates = 0
        self.aborted = 0
        # Elasticity: a replica can crash mid-run and be restored later.
        # The epoch fences continuations of transactions that were in flight
        # when the crash happened: events from an older epoch are dropped.
        self.alive = True
        self.epoch = 0
        self.crashes = 0

    # ------------------------------------------------------------------
    # Transaction submission
    # ------------------------------------------------------------------
    def submit(self, txn_type: TransactionType, submitted_at: float,
               on_done: CompletionCallback) -> None:
        """Accept a transaction from the load balancer."""
        if not self.alive:
            raise RuntimeError("replica %d is not alive" % (self.replica_id,))
        self.proxy.admission.admit(lambda: self._start(txn_type, submitted_at, on_done, attempt=1))

    def _start(self, txn_type: TransactionType, submitted_at: float,
               on_done: CompletionCallback, attempt: int) -> None:
        if not self.alive:
            # Crashed between admission and start (or before a retry); the
            # cluster has already failed the transaction's callback.
            return
        epoch = self.epoch
        txn_id = self._next_txn_id = self._next_txn_id + 1
        snapshot = self.engine.snapshots.begin(txn_id)
        work, writeset = self.engine.execute(txn_type)

        def after_cpu() -> None:
            if self.epoch != epoch:
                return
            read_time = self.disk_model.read_seconds(
                work.random_read_bytes, work.sequential_read_bytes
            )
            if read_time > 0:
                self.resources.disk.acquire(read_time, after_reads)
            else:
                after_reads()

        def after_reads() -> None:
            if self.epoch != epoch:
                return
            if writeset is None:
                self._finish(txn_id, txn_type, submitted_at, work, committed=True,
                             on_done=on_done)
                return
            # One round trip to the certifier.
            self.sim.defer(self.proxy.config.certification_latency_s, certify)

        def certify() -> None:
            if self.epoch != epoch:
                # The replica crashed before the commit registered; the
                # transaction dies uncertified.
                return
            stamped = writeset.__class__(
                transaction_type=writeset.transaction_type,
                items=writeset.items,
                origin_replica=self.replica_id,
                snapshot_version=snapshot,
            )
            result = self.certifier.certify(stamped, snapshot, now=self.sim.now)
            if result.committed:
                # Dirty pages go to the background writer; the transaction
                # does not wait for them (durability lives in the middleware).
                write_time = self.disk_model.write_seconds(work.write_bytes)
                if write_time > 0:
                    self.resources.disk.add_background_work(write_time)
                self.proxy.advance(result.version)
                self.engine.snapshots.advance(result.version)
                self.committed_updates += 1
                if self.on_local_commit is not None:
                    entry = CertifiedWriteSet(version=result.version, writeset=stamped,
                                              commit_time=self.sim.now)
                    self.on_local_commit(self, entry)
                self._finish(txn_id, txn_type, submitted_at, work, committed=True,
                             on_done=on_done)
            else:
                self.aborted += 1
                if self.metrics is not None:
                    self.metrics.record_abort()
                self.engine.snapshots.finish(txn_id)
                if attempt < self.max_retries:
                    # Retry immediately on the same replica, keeping the
                    # admission slot (the prototype aborts and retries).
                    self._retry(txn_type, submitted_at, on_done, attempt + 1)
                else:
                    self._finish(txn_id, txn_type, submitted_at, work, committed=False,
                                 on_done=on_done, already_closed=True)

        cpu_time = work.cpu_seconds
        if cpu_time > 0:
            self.resources.cpu.acquire(cpu_time, after_cpu)
        else:
            after_cpu()

    def _retry(self, txn_type: TransactionType, submitted_at: float,
               on_done: CompletionCallback, attempt: int) -> None:
        self._start(txn_type, submitted_at, on_done, attempt)

    def _finish(self, txn_id: int, txn_type: TransactionType, submitted_at: float,
                work: TransactionWork, committed: bool, on_done: CompletionCallback,
                already_closed: bool = False) -> None:
        if not already_closed:
            self.engine.snapshots.finish(txn_id)
        self.completed += 1
        if self.metrics is not None and committed:
            now = self.sim.now
            self.metrics.record_completion(
                now, txn_type.name, self.replica_id, now - submitted_at,
                txn_type.is_update, work.read_bytes,
                self.disk_model.effective_write_bytes(work.write_bytes),
            )
        self.proxy.admission.release()
        on_done(committed)

    # ------------------------------------------------------------------
    # Crash / restore (elasticity)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail the replica: in-flight transactions are abandoned.

        The epoch bump fences every continuation already in the event queue;
        the admission controller is rebuilt so queued-but-unstarted work is
        discarded.  Durable state (the applied-version cursor) survives, as
        it would on disk; the page cache is cleared by recovery.  Idempotent
        while down.
        """
        if not self.alive:
            return
        self.alive = False
        self.epoch += 1
        self.crashes += 1
        self.proxy.admission = AdmissionController(self.proxy.config.max_concurrency)
        self.engine.snapshots.abort_open()

    # ------------------------------------------------------------------
    # Update propagation
    # ------------------------------------------------------------------
    def apply_remote_writesets(self, entries: Sequence[CertifiedWriteSet]) -> None:
        """Apply a batch of committed writesets from the certifier.

        Writesets originating at this replica are skipped (their effects are
        already local); the rest are applied subject to the proxy's update
        filter.  Each entry's buffer-pool effects are applied individually
        (cache state evolves entry by entry), but the resulting CPU time,
        disk service time and background-I/O accounting are *aggregated over
        the batch* and charged once -- a pull that returns dozens of
        writesets used to pay per-entry resource bookkeeping, which showed
        up as a hot path on paper-scale runs.
        """
        proxy = self.proxy
        engine = self.engine
        apply_writeset_fast = engine.apply_writeset_fast
        disk_model = self.disk_model
        filter_tables = proxy.filter_tables
        replica_id = self.replica_id
        cpu_seconds = 0.0
        io_seconds = 0.0
        read_bytes = 0.0
        write_bytes = 0.0
        applications = 0
        filtered = 0
        applied_version = proxy.applied_version
        for entry in entries:
            version = entry.version
            if version <= applied_version:
                continue
            writeset = entry.writeset
            if writeset.origin_replica != replica_id:
                cpu, random_read, written = \
                    apply_writeset_fast(writeset, filter_tables)
                if written > 0 or cpu > 0:
                    applications += 1
                    cpu_seconds += cpu
                    io_seconds += disk_model.read_seconds(random_read, 0.0)
                    io_seconds += disk_model.write_seconds(written)
                    read_bytes += random_read
                    write_bytes += written
                else:
                    filtered += 1
            applied_version = version
        if applications:
            proxy.writesets_applied += applications
        if filtered:
            proxy.writesets_filtered += filtered
        if applied_version > proxy.applied_version:
            # Cursors are committed once per batch; versions inside a batch
            # ascend, so the final advance is equivalent to per-entry ones.
            proxy.advance(applied_version)
            engine.snapshots.advance(applied_version)
        if cpu_seconds > 0:
            self.resources.cpu.add_background_work(cpu_seconds)
        if io_seconds > 0:
            self.resources.disk.add_background_work(io_seconds)
        if self.metrics is not None and (read_bytes > 0 or write_bytes > 0):
            self.metrics.record_background_io(
                time=self.sim.now,
                replica_id=self.replica_id,
                read_bytes=read_bytes,
                write_bytes=disk_model.effective_write_bytes(write_bytes),
            )

    def pull_updates(self) -> int:
        """Fetch and apply all writesets committed since our applied version.

        Returns the number of writesets fetched.  Called periodically (the
        prototype pulls every 500 ms when idle) and by the certifier's lag
        notifications.  A crashed or retired replica pulls nothing.
        """
        if not self.alive:
            return 0
        entries = self.certifier.writesets_since(self.proxy.applied_version)
        if entries:
            self.apply_remote_writesets(entries)
        return len(entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lag(self) -> int:
        return self.certifier.current_version - self.proxy.applied_version

    def describe(self) -> str:
        return "replica %d: completed=%d updates=%d aborted=%d lag=%d" % (
            self.replica_id, self.completed, self.committed_updates, self.aborted, self.lag
        )
