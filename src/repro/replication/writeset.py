"""Writesets and their certified form.

A writeset is "the core information required to reflect the effects of an
update transaction's changes" (Section 4.1): which tables were changed,
which rows (keys), and the payload to apply.  The raw
:class:`~repro.storage.engine.WriteSet` is produced by the storage engine
when an update transaction executes; once the certifier admits it, it gains
a global commit version and becomes a :class:`CertifiedWriteSet`, the unit
stored in the certifier's persistent log and propagated to replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.storage.engine import WriteItem, WriteSet


@dataclass(frozen=True)
class CertifiedWriteSet:
    """A writeset that passed certification, with its global commit order."""

    version: int
    writeset: WriteSet
    commit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.version <= 0:
            raise ValueError("commit versions start at 1")

    @property
    def tables(self) -> Iterable[str]:
        return self.writeset.tables

    @property
    def payload_bytes(self) -> int:
        return self.writeset.payload_bytes

    def conflicts_with(self, other: WriteSet) -> bool:
        return self.writeset.conflicts_with(other)


__all__ = ["CertifiedWriteSet", "WriteItem", "WriteSet"]
