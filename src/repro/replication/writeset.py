"""Writesets and their certified form.

A writeset is "the core information required to reflect the effects of an
update transaction's changes" (Section 4.1): which tables were changed,
which rows (keys), and the payload to apply.  The raw
:class:`~repro.storage.engine.WriteSet` is produced by the storage engine
when an update transaction executes; once the certifier admits it, it gains
a global commit version and becomes a :class:`CertifiedWriteSet`, the unit
stored in the certifier's persistent log and propagated to replicas.
"""

from __future__ import annotations

from typing import Iterable

from repro.storage.engine import WriteItem, WriteSet


class CertifiedWriteSet:
    """A writeset that passed certification, with its global commit order.

    Hand-written rather than a frozen dataclass: one of these is constructed
    per committed transaction, and the frozen-dataclass ``__init__`` (three
    ``object.__setattr__`` calls) was a measurable slice of the certification
    hot path.  Value equality and hashing match the old dataclass; treat
    instances as immutable.
    """

    __slots__ = ("version", "writeset", "commit_time")

    def __init__(self, version: int, writeset: WriteSet,
                 commit_time: float = 0.0) -> None:
        if version <= 0:
            raise ValueError("commit versions start at 1")
        self.version = version
        self.writeset = writeset
        self.commit_time = commit_time

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CertifiedWriteSet):
            return NotImplemented
        return (self.version == other.version
                and self.writeset == other.writeset
                and self.commit_time == other.commit_time)

    def __hash__(self) -> int:
        return hash((self.version, self.writeset, self.commit_time))

    def __repr__(self) -> str:
        return ("CertifiedWriteSet(version=%r, writeset=%r, commit_time=%r)"
                % (self.version, self.writeset, self.commit_time))

    @property
    def tables(self) -> Iterable[str]:
        return self.writeset.tables

    @property
    def payload_bytes(self) -> int:
        return self.writeset.payload_bytes

    def conflicts_with(self, other: WriteSet) -> bool:
        return self.writeset.conflicts_with(other)


__all__ = ["CertifiedWriteSet", "WriteItem", "WriteSet"]
