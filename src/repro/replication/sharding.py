"""Sharded certification: a partitioned conflict index and log.

The plain :class:`~repro.replication.certifier.Certifier` is the cluster's
one remaining global serial point: every update transaction funnels through
a single conflict index and a single log guarded by one ``current_version``.
This module partitions both by ``(relation, key-range)`` into N shards, each
with its own commit clock (count of commits that touched the shard) and its
own truncation horizon, so certification state -- the index footprint, the
log retention and the truncation/sweep work -- scales per shard.

Design invariants
-----------------

**Global commit sequence.**  Commit versions remain a single dense global
sequence (``current_version``), exactly as in the plain certifier; a shard's
"clock" is its *position count*, not a second version namespace.  Each
shard's inverted index maps ``(relation, key)`` to the *global* version of
the key's last committed writer, so the GSI conflict rule -- abort iff some
key's last writer is newer than the transaction's snapshot -- evaluates
identically at any shard count.  This is what makes ``shards=1`` (and, under
the simulator's atomic round trips, any shard count) reproduce the plain
certifier's decisions bit-identically.

**Partitioned log + merged serving view.**  Every committed writeset is
appended once to each shard it touched (shared object, not a copy) -- the
per-shard logs are the authoritative partition, with independent truncation
horizons and position cursors -- and once to a merged, global-order list
that serves the hot scalar-cursor piggyback (``writesets_since``) in O(1),
the way the plain certifier's log does.  A real multi-node deployment would
drop the merged view and stream per-shard logs over per-shard channels; the
vector-cursor API (:meth:`ShardedCertifier.writesets_since_sharded`) is that
path, and reassembles the same global order by merging on commit version.

**Cross-shard writesets.**  A writeset whose keys all route to one shard is
certified against that shard's index alone.  A cross-shard writeset probes
every involved shard and, on commit, is logged in each; because versions are
global, no coordination beyond the probe is needed.  A writeset may also
carry an explicit *vector of shard clocks* (``WriteSet.shard_versions``)
instead of a scalar snapshot: certification then converts the vector to
per-shard global floors by reading each shard's log at the observed
position, in fixed ascending shard-id order, so the merge is deterministic
regardless of how the vector was assembled.

**Per-shard truncation without gaps.**  ``truncate`` advances a uniform
floor; ``truncate_shard`` lets one shard's retention advance further (e.g. a
hot shard trimmed aggressively).  ``oldest_available_version`` advertises
``max`` over the merged floor and every shard's horizon, so a cold-joining
replica is either served a complete suffix or told to recover a prefix from
another copy -- it can never observe a *gap* between one shard's truncated
prefix and another's retained entries.  The conflict floor is per-shard
(``max(snapshot, shard_floor)``); dropping a shard's prefix can never hide a
conflict, because a key's last writer at or below the shard's floor was by
construction dropped *from that key's own shard*, whose index was swept to
the same floor.
"""

from __future__ import annotations

from typing import (Callable, Dict, List, Optional, Sequence, Tuple, Type,
                    cast)
from zlib import crc32

from repro.replication.certifier import (RPC_DEDUP_WINDOW, CertificationResult,
                                         CertifierStats, LagSubscriptionIndex,
                                         _RpcDedupState)
from repro.replication.writeset import CertifiedWriteSet, WriteSet

#: Keys are routed in blocks of ``2**SHARD_RANGE_BITS`` consecutive keys, so
#: range scans and co-located rows tend to land on one shard; 64-key blocks
#: keep the per-shard load even for the shipped workloads' key spaces.
SHARD_RANGE_BITS = 6

#: ``tuple.__new__`` builds a ``CertificationResult`` without going through
#: NamedTuple's generated Python-level ``__new__`` -- one construction per
#: certified request, so the wrapper shows up on the hot path.  The cast
#: gives the call sites the concrete result type.
_RESULT_NEW = cast(
    "Callable[[Type[CertificationResult], Tuple[bool, int, Optional[int]]],"
    " CertificationResult]",
    tuple.__new__)



class ShardRouter:
    """Deterministic content-based ``(relation, key) -> shard`` routing.

    The shard of a key is ``(crc32(relation) + (key >> range_bits)) mod N``:
    a per-relation base offset (so small relations do not all pile onto
    shard 0) plus the key's range block.  Routing depends only on writeset
    *content*, never on arrival order or instance state, so every certifier
    replica (leader, backups, a rebuilt fail-over target) routes
    identically and routing fingerprints are reproducible across runs.
    """

    __slots__ = ("num_shards", "range_bits", "_mask", "_rel_base")

    def __init__(self, num_shards: int, range_bits: int = SHARD_RANGE_BITS) -> None:
        if num_shards < 1:
            raise ValueError("shard count must be at least 1")
        if range_bits < 0:
            raise ValueError("range bits cannot be negative")
        self.num_shards = num_shards
        self.range_bits = range_bits
        # Power-of-two shard counts use a mask on the hot path; 0 means
        # "use modulo" (num_shards == 1 also lands here and short-circuits).
        self._mask = num_shards - 1 if num_shards & (num_shards - 1) == 0 else 0
        self._rel_base: Dict[str, int] = {}

    def relation_base(self, relation: str) -> int:
        """The relation's routing offset (cached crc32)."""
        base = self._rel_base.get(relation)
        if base is None:
            base = self._rel_base[relation] = crc32(relation.encode())
        return base

    def shard_of(self, relation: str, key: int) -> int:
        """Shard id for one key.  Reference implementation; the certifier's
        batch loop inlines the same arithmetic."""
        if self.num_shards == 1:
            return 0
        block = self.relation_base(relation) + (key >> self.range_bits)
        if self._mask:
            return block & self._mask
        return block % self.num_shards

    def shards_of(self, writeset: WriteSet) -> Tuple[int, ...]:
        """Distinct shards a writeset touches, ascending (deterministic)."""
        touched = 0
        for item in writeset.items:
            relation = item.relation
            for key in item.keys:
                touched |= 1 << self.shard_of(relation, key)
        out: List[int] = []
        shard = 0
        while touched:
            if touched & 1:
                out.append(shard)
            touched >>= 1
            shard += 1
        return tuple(out)


def _home_shard(router: ShardRouter, requests: Sequence[Tuple[WriteSet, int]]) -> int:
    """The dedup home of a batched RPC: the lowest shard any of its
    writesets touches (0 for an empty or read-only batch).  A retransmission
    carries the same writeset objects, so it routes to the same home and
    finds its cached decision there.  Module-level so it also serves the
    :class:`~repro.replication.recovery.ReplicatedCertifierLog` wrapper,
    which reuses :meth:`ShardedCertifier.certify_rpc` unbound.
    """
    home: Optional[int] = None
    for writeset, _snapshot in requests:
        for item in writeset.items:
            relation = item.relation
            for key in item.keys:
                shard = router.shard_of(relation, key)
                if home is None or shard < home:
                    home = shard
                    if home == 0:
                        return 0
    return 0 if home is None else home


class ShardedCertifier:
    """Certifier with the conflict index and log partitioned into N shards.

    Drop-in for :class:`~repro.replication.certifier.Certifier`: the scalar
    API (``certify``, ``certify_batch``, ``certify_rpc``,
    ``writesets_since``, ``truncate``, ``subscriptions``, ``stats``) has
    identical semantics, and ``shards=1`` reproduces the plain certifier's
    behaviour bit-for-bit.  On top of it, the vector API exposes the
    partition: per-shard position cursors (:meth:`writesets_since_sharded`,
    :meth:`cursor_positions`), per-shard clocks and horizons
    (:meth:`shard_clock`, :meth:`shard_floor`, :meth:`truncate_shard`) and
    vector-snapshot certification via ``WriteSet.shard_versions``.
    """

    def __init__(self, num_shards: int = 1,
                 lag_notification_threshold: int = 25,
                 max_log_entries: Optional[int] = None,
                 range_bits: int = SHARD_RANGE_BITS) -> None:
        if lag_notification_threshold <= 0:
            raise ValueError("lag notification threshold must be positive")
        self.lag_notification_threshold = lag_notification_threshold
        self.max_log_entries = max_log_entries
        self.num_shards = num_shards
        self.router = ShardRouter(num_shards, range_bits)
        self.subscriptions = LagSubscriptionIndex(lag_notification_threshold)
        #: Merged serving view: every commit once, in global order.
        self.log: List[CertifiedWriteSet] = []
        self._log_offset = 0
        self.current_version = 0
        # --- the partition ------------------------------------------------
        #: Per-shard log: the commits that touched the shard, ascending by
        #: (global) version; entries are shared with ``log``, not copied.
        self._shard_logs: List[List[CertifiedWriteSet]] = [[] for _ in range(num_shards)]
        #: Entries ever dropped from the front of each shard log (so a
        #: position cursor is ``dropped + list index`` and survives trims).
        self._shard_dropped: List[int] = [0] * num_shards
        #: Per-shard truncation horizon: no entry at or below this *global*
        #: version is retained in (or probed through) the shard.
        self._shard_floors: List[int] = [0] * num_shards
        #: Per-shard inverted index: (relation, key) -> global version of
        #: the key's last committed writer.
        self._shard_indices: List[Dict[Tuple[str, int], int]] = [dict() for _ in range(num_shards)]
        #: Serving floor advertised to replicas: max of the merged offset
        #: and every shard horizon (kept as an attribute so the hot
        #: ``writesets_since`` check is one comparison).
        self._avail_floor = 0
        #: Round-robin cursor for amortised per-shard reclaim: each uniform
        #: truncation sweeps exactly one shard, so truncation cost does not
        #: scale with the shard count and staleness is bounded by
        #: ``num_shards`` truncation rounds per shard.
        self._reclaim_cursor = 0
        # --- at-least-once RPC dedup, partitioned -------------------------
        #: Highest request id ever served per origin, across all shards
        #: (the global stale check; a per-shard ``latest`` alone would let a
        #: stale id whose decision was cached in another shard re-certify).
        self.rpc_latest: Dict[int, int] = {}
        #: Per-shard dedup windows: shard -> origin -> _RpcDedupState.  A
        #: batch's cached decision lives in its home shard's window.
        self._rpc_windows: List[Dict[int, _RpcDedupState]] = [dict() for _ in range(num_shards)]
        self.stats = CertifierStats()
        #: Scratch list reused across requests by the batch loop.
        self._routed: List[Tuple[int, Tuple[str, int]]] = []

    # ------------------------------------------------------------------
    # Certification
    # ------------------------------------------------------------------
    @property
    def oldest_available_version(self) -> int:
        """Oldest version a replica can still be served, with *no* gap: the
        max over the merged floor and every shard's truncation horizon."""
        return self._avail_floor + 1

    def _vector_floors(self, shard_versions: Sequence[int]) -> List[int]:
        """Convert an observed vector of shard clocks to per-shard global
        conflict floors, in fixed ascending shard-id order.

        The floor for shard ``s`` is the global version of the
        ``shard_versions[s]``-th commit in that shard (its horizon when the
        observed position fell below the retained prefix, ``0`` when the
        shard was empty): a transaction that observed the first ``v`` shard
        commits conflicts exactly with writers the shard appended after
        position ``v``.
        """
        if len(shard_versions) != self.num_shards:
            raise ValueError(
                "shard version vector has %d entries for %d shards"
                % (len(shard_versions), self.num_shards))
        floors: List[int] = []
        for shard in range(self.num_shards):
            observed = shard_versions[shard]
            if observed < 0:
                raise ValueError("shard clocks cannot be negative")
            log = self._shard_logs[shard]
            dropped = self._shard_dropped[shard]
            index = min(observed, dropped + len(log)) - dropped - 1
            if index < 0:
                floors.append(self._shard_floors[shard] if observed else 0)
            else:
                floors.append(log[index].version)
        return floors

    def certify(self, writeset: WriteSet, snapshot_version: int,
                now: float = 0.0) -> CertificationResult:
        """Certify one writeset (reference single-request path).

        ``writeset.shard_versions``, when set, *combines* with the scalar
        ``snapshot_version``: each key's conflict floor is the max of the
        scalar snapshot and the floor derived from the observed clock of
        the key's own shard.  (Combining, not replacing, keeps the
        backup-mirroring path -- which certifies at
        ``snapshot = current_version`` to force-accept the leader's
        decision -- correct for vector writesets too.)
        """
        self.stats.requests += 1
        shard_of = self.router.shard_of
        indices = self._shard_indices
        shard_floors = self._shard_floors
        vector = writeset.shard_versions
        floors = self._vector_floors(vector) if vector is not None else None
        conflict: Optional[int] = None
        for item in writeset.items:
            relation = item.relation
            for key in item.keys:
                shard = shard_of(relation, key)
                version = indices[shard].get((relation, key))
                if version is None:
                    continue
                floor = snapshot_version
                if floors is not None and floors[shard] > floor:
                    floor = floors[shard]
                if floor < shard_floors[shard]:
                    floor = shard_floors[shard]
                if floor < self._log_offset:
                    floor = self._log_offset
                if version > floor and (conflict is None or version < conflict):
                    conflict = version
        if conflict is not None:
            self.stats.aborts += 1
            return CertificationResult(committed=False, version=self.current_version,
                                       conflict_with=conflict)
        return self._commit(writeset, now)

    def _commit(self, writeset: WriteSet, now: float) -> CertificationResult:
        version = self.current_version + 1
        self.current_version = version
        entry = CertifiedWriteSet(version, writeset, now)
        self.log.append(entry)
        shard_of = self.router.shard_of
        indices = self._shard_indices
        shard_logs = self._shard_logs
        touched = 0
        for item in writeset.items:
            relation = item.relation
            for key in item.keys:
                shard = shard_of(relation, key)
                indices[shard][(relation, key)] = version
                bit = 1 << shard
                if not touched & bit:
                    touched |= bit
                    shard_logs[shard].append(entry)
        self.stats.commits += 1
        self._maybe_trim()
        return CertificationResult(committed=True, version=version)

    def certify_batch(self, requests: Sequence[Tuple[WriteSet, int]],
                      since_version: int, now: float = 0.0
                      ) -> Tuple[List[CertificationResult], List[CertifiedWriteSet]]:
        """Serve one proxy's batched round trip (hot path).

        Semantics match :meth:`Certifier.certify_batch` exactly -- FIFO
        within the batch, piggyback computed after it -- but the loop is
        inlined: routing, probe and index write run against hoisted shard
        state, and stats are accumulated per batch, which is where the
        single-core throughput of the `certifier-sharded` scenario comes
        from.
        """
        stats = self.stats
        stats.batches += 1
        stats.batched_requests += len(requests)
        stats.requests += len(requests)
        num_shards = self.num_shards
        mask = self.router._mask
        range_bits = self.router.range_bits
        rel_base = self.router._rel_base
        crc = crc32
        indices = self._shard_indices
        shard_logs = self._shard_logs
        shard_floors = self._shard_floors
        merged = self.log
        merged_append = merged.append
        gfloor = self._log_offset
        version = self.current_version
        commits = 0
        aborts = 0
        results: List[CertificationResult] = []
        append_r = results.append
        routed = self._routed
        single = num_shards == 1
        index0 = indices[0]
        # Construct results through tuple.__new__ directly: NamedTuple's
        # generated __new__ is a Python-level wrapper and this loop builds
        # one result per request.
        new_result = _RESULT_NEW
        result_cls = CertificationResult
        for writeset, snapshot in requests:
            if writeset.shard_versions is not None:
                # Vector-snapshot writesets take the reference path; they
                # only occur on the explicit cross-shard API, not in the
                # simulator's scalar round trips.  certify() keeps its own
                # request/commit/abort counts, so back out the bulk ones.
                self.current_version = version
                stats.requests -= 1
                result = self.certify(writeset, snapshot, now=now)
                version = self.current_version
                if result.committed:
                    stats.commits -= 1
                    commits += 1
                else:
                    stats.aborts -= 1
                    aborts += 1
                append_r(result)
                continue
            start = snapshot if snapshot > gfloor else gfloor
            conflict: Optional[int] = None
            del routed[:]
            route = routed.append
            ws_shard = -1
            ws_multi = False
            if single:
                for item in writeset.items:
                    relation = item.relation
                    for key in item.keys:
                        ck = (relation, key)
                        route((0, ck))
                        v = index0.get(ck)
                        if v is not None and v > start:
                            if conflict is None or v < conflict:
                                conflict = v
            else:
                last_rel = None
                base = 0
                for item in writeset.items:
                    relation = item.relation
                    if relation is not last_rel:
                        last_rel = relation
                        base = rel_base.get(relation)
                        if base is None:
                            base = rel_base[relation] = crc(relation.encode())
                    for key in item.keys:
                        if mask:
                            shard = (base + (key >> range_bits)) & mask
                        else:
                            shard = (base + (key >> range_bits)) % num_shards
                        if shard != ws_shard:
                            if ws_shard < 0:
                                ws_shard = shard
                            else:
                                ws_multi = True
                        ck = (relation, key)
                        route((shard, ck))
                        v = indices[shard].get(ck)
                        if v is not None and v > start and v > shard_floors[shard]:
                            if conflict is None or v < conflict:
                                conflict = v
            if conflict is not None:
                aborts += 1
                append_r(new_result(result_cls, (False, version, conflict)))
                continue
            version += 1
            entry = CertifiedWriteSet(version, writeset, now)
            merged_append(entry)
            if single:
                for _, ck in routed:
                    index0[ck] = version
                shard_logs[0].append(entry)
            elif not ws_multi:
                # Single-shard writeset: the common case in a partitioned
                # workload certifies against exactly one shard.
                index = indices[ws_shard]
                for _, ck in routed:
                    index[ck] = version
                shard_logs[ws_shard].append(entry)
            else:
                touched = 0
                for shard, ck in routed:
                    indices[shard][ck] = version
                    bit = 1 << shard
                    if not touched & bit:
                        touched |= bit
                        shard_logs[shard].append(entry)
            commits += 1
            append_r(new_result(result_cls, (True, version, None)))
        self.current_version = version
        stats.commits += commits
        stats.aborts += aborts
        if commits and self.max_log_entries is not None:
            self._maybe_trim()
        return results, self.writesets_since(since_version)

    def certify_rpc(self, origin_replica: int, request_id: int,
                    requests: Sequence[Tuple[WriteSet, int]],
                    since_version: int, now: float = 0.0
                    ) -> Tuple[Optional[List[CertificationResult]],
                               List[CertifiedWriteSet]]:
        """At-least-once batched round trip with a *per-shard* dedup window.

        The cached decision of a batch lives in the window of its home
        shard (lowest shard it touches); a retransmission carries the same
        writesets, routes to the same home, and is answered from cache.
        The fresh/stale fence (highest id ever served per origin) stays
        global across shards -- with only per-shard ``latest`` fences, a
        stale retransmission whose decision was cached under a *different*
        home shard would look fresh and be certified twice.

        Works unbound for the replicated wrapper
        (:class:`~repro.replication.recovery.ReplicatedCertifierLog`
        carries its own ``rpc_latest``/``_rpc_windows`` and delegates
        ``router``), so the partitioned dedup state survives fail-over.
        """
        home = _home_shard(self.router, requests)
        windows = self._rpc_windows[home]
        cache = windows.get(origin_replica)
        if cache is None:
            cache = windows[origin_replica] = _RpcDedupState()
        window = cache.window
        cached = window.get(request_id)
        if cached is not None:
            self.stats.dedup_hits += 1
            return cached, self.writesets_since(since_version)
        if request_id <= self.rpc_latest.get(origin_replica, 0):
            self.stats.stale_requests += 1
            return None, []
        self.rpc_latest[origin_replica] = request_id
        cache.latest = request_id
        results, piggyback = self.certify_batch(requests, since_version, now=now)
        window[request_id] = results
        while len(window) > RPC_DEDUP_WINDOW:
            del window[next(iter(window))]
        return results, piggyback

    # ------------------------------------------------------------------
    # Update propagation: scalar (merged) and vector (per-shard) cursors
    # ------------------------------------------------------------------
    def writesets_since(self, version: int, limit: Optional[int] = None
                        ) -> List[CertifiedWriteSet]:
        """Committed writesets newer than ``version``, in global order."""
        if version < self._avail_floor:
            raise KeyError(
                "replica requests version %d but certification history starts at %d; "
                "recovery is required" % (version, self._avail_floor + 1))
        start = version - self._log_offset
        if limit is not None:
            return self.log[start:start + limit]
        return self.log[start:]

    def cursor_positions(self, version: int) -> List[int]:
        """Per-shard position cursors equivalent to scalar cursor ``version``.

        ``positions[s]`` counts the shard's commits at or below ``version``
        (in absolute positions, surviving truncation), so a subsequent
        :meth:`writesets_since_sharded` serves exactly the entries a scalar
        ``writesets_since(version)`` would.
        """
        if version < self._avail_floor:
            raise KeyError(
                "replica requests version %d but certification history starts at %d; "
                "recovery is required" % (version, self._avail_floor + 1))
        positions: List[int] = []
        for shard in range(self.num_shards):
            log = self._shard_logs[shard]
            newer = 0
            for entry in reversed(log):
                if entry.version <= version:
                    break
                newer += 1
            positions.append(self._shard_dropped[shard] + len(log) - newer)
        return positions

    def writesets_since_sharded(self, positions: Sequence[int]
                                ) -> Tuple[List[CertifiedWriteSet], List[int]]:
        """Serve a vector-cursor pull: per-shard suffixes merged by commit
        version into global order.

        ``positions`` are absolute per-shard positions (as returned here or
        by :meth:`cursor_positions`).  Cross-shard entries appear in every
        involved shard's suffix and are deduplicated on their (globally
        unique) version during the merge.  Raises ``KeyError`` when a
        cursor points below a shard's dropped prefix -- the replica must
        recover, it cannot be served a suffix with a hole in it.
        """
        if len(positions) != self.num_shards:
            raise ValueError("cursor vector has %d entries for %d shards"
                             % (len(positions), self.num_shards))
        gathered: List[CertifiedWriteSet] = []
        new_positions: List[int] = []
        for shard in range(self.num_shards):
            dropped = self._shard_dropped[shard]
            log = self._shard_logs[shard]
            start = positions[shard] - dropped
            if start < 0:
                raise KeyError(
                    "shard %d cursor %d is below its retained prefix (%d dropped); "
                    "recovery is required" % (shard, positions[shard], dropped))
            if start < len(log):
                gathered.extend(log[start:])
            new_positions.append(dropped + len(log))
        if not gathered:
            return [], new_positions
        gathered.sort(key=_entry_version)
        merged: List[CertifiedWriteSet] = [gathered[0]]
        merged_append = merged.append
        last = gathered[0].version
        for entry in gathered:
            if entry.version != last:
                merged_append(entry)
                last = entry.version
        return merged, new_positions

    def should_notify(self, replica_applied_version: int) -> bool:
        """Merged-watermark lag probe (see :meth:`Certifier.should_notify`)."""
        behind = self.current_version - replica_applied_version
        if behind >= self.lag_notification_threshold:
            self.stats.notifications_sent += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Shard introspection
    # ------------------------------------------------------------------
    def shard_clock(self, shard: int) -> int:
        """Commits that have touched the shard (its position clock)."""
        return self._shard_dropped[shard] + len(self._shard_logs[shard])

    def shard_clocks(self) -> List[int]:
        return [self.shard_clock(s) for s in range(self.num_shards)]

    def shard_floor(self, shard: int) -> int:
        """The shard's truncation horizon (a global version)."""
        return self._shard_floors[shard]

    def shard_log_lengths(self) -> List[int]:
        return [len(log) for log in self._shard_logs]

    def index_sizes(self) -> List[int]:
        return [len(index) for index in self._shard_indices]

    # ------------------------------------------------------------------
    # Log management
    # ------------------------------------------------------------------
    def truncate(self, oldest_needed_version: int) -> int:
        """Uniformly drop entries no replica needs.  Returns merged entries
        dropped (parity with :meth:`Certifier.truncate`).

        Only the merged prefix drop and the per-shard floor bumps -- the
        O(shards) part certification correctness depends on, since probes
        treat index entries at or below the floor as absent -- happen on
        every call.  The per-shard log-prefix drop and index sweep are pure
        memory reclaim and are amortised round-robin, one shard per call,
        so truncation cost does not scale with the shard count and no
        shard goes more than ``num_shards`` rounds without a sweep.
        """
        if oldest_needed_version <= self._log_offset:
            return 0
        drop = min(oldest_needed_version - self._log_offset, len(self.log))
        if drop > 0:
            del self.log[:drop]
            self._log_offset += drop
        floor = self._log_offset
        floors = self._shard_floors
        for shard in range(self.num_shards):
            if floor > floors[shard]:
                floors[shard] = floor
        self._avail_floor = max(self._log_offset, max(floors))
        cursor = self._reclaim_cursor
        self._reclaim_shard(cursor)
        self._reclaim_cursor = cursor + 1 if cursor + 1 < self.num_shards else 0
        return drop

    def truncate_shard(self, shard: int, oldest_needed_version: int) -> int:
        """Advance one shard's retention beyond the uniform floor.

        The merged view keeps serving scalar cursors above the *merged*
        floor; the advertised ``oldest_available_version`` rises with the
        shard horizon so vector cursors never see a gap.  Returns the
        number of shard-log entries dropped.
        """
        dropped = self._truncate_shard_to(shard, oldest_needed_version)
        self._avail_floor = max(self._log_offset, max(self._shard_floors))
        return dropped

    def _truncate_shard_to(self, shard: int, floor: int) -> int:
        if floor <= self._shard_floors[shard]:
            return 0
        self._shard_floors[shard] = floor
        return self._reclaim_shard(shard)

    def _reclaim_shard(self, shard: int) -> int:
        """Drop the shard-log prefix and index entries at or below the
        shard's floor.  Pure memory reclaim: probes, clocks and cursors
        already treat entries at or below the floor as absent, so this can
        run lazily (``shard_clock`` is ``dropped + len(log)``, which the
        prefix drop preserves)."""
        floor = self._shard_floors[shard]
        log = self._shard_logs[shard]
        cut = 0
        for entry in log:
            if entry.version > floor:
                break
            cut += 1
        if cut:
            del log[:cut]
            self._shard_dropped[shard] += cut
        index = self._shard_indices[shard]
        if index:
            stale = [ck for ck, version in index.items() if version <= floor]
            for ck in stale:
                del index[ck]
        return cut

    def _maybe_trim(self) -> None:
        if self.max_log_entries is None:
            return
        excess = len(self.log) - self.max_log_entries
        if excess > 0:
            # Cheap on the commit path: advance the merged floor only; the
            # per-shard prefixes and index sweeps are aligned amortised,
            # once staleness could dominate a shard's footprint.
            del self.log[:excess]
            self._log_offset += excess
            if self._avail_floor < self._log_offset:
                self._avail_floor = self._log_offset
            total_index = 0
            for index in self._shard_indices:
                total_index += len(index)
            if total_index > 256 and total_index > 8 * len(self.log):
                floor = self._log_offset
                floors = self._shard_floors
                for shard in range(self.num_shards):
                    if floor > floors[shard]:
                        floors[shard] = floor
                    self._reclaim_shard(shard)

    def log_is_total_order(self) -> bool:
        """Invariant check: the merged log is dense and increasing, every
        shard log is strictly increasing, and shard entries are drawn from
        the merged sequence."""
        expected = self._log_offset + 1
        for entry in self.log:
            if entry.version != expected:
                return False
            expected += 1
        for shard in range(self.num_shards):
            # Strictly increasing; a not-yet-reclaimed prefix at or below
            # the shard floor is legal (reclaim is amortised).
            previous = 0
            for entry in self._shard_logs[shard]:
                if entry.version <= previous:
                    return False
                previous = entry.version
        return True


def _entry_version(entry: CertifiedWriteSet) -> int:
    return entry.version


__all__ = ["SHARD_RANGE_BITS", "ShardRouter", "ShardedCertifier"]
