#!/usr/bin/env python
"""Update filtering on RUBiS: what each replica stops applying.

Runs the RUBiS bidding mix under MALB-SC with update filtering enabled and
then reports, per replica, which tables it keeps up to date and how many
remote writesets its proxy filtered -- the mechanism behind Figure 8 and
Section 5.5 of the paper.

Run with:  python examples/update_filtering_rubis.py
"""

from repro.experiments.runner import ExperimentConfig, build_cluster


def main() -> None:
    config = ExperimentConfig(
        name="rubis-update-filtering",
        workload="rubis",
        mix="bidding",
        ram_mb=512,
        policy="MALB-SC+UF",
        duration_s=200.0,
        warmup_s=80.0,
    )
    cluster = build_cluster(config)
    result = cluster.run(duration_s=config.duration_s, warmup_s=config.warmup_s)

    print("RUBiS bidding mix, 16 replicas, 512 MB each, MALB-SC + update filtering")
    print("throughput: %.1f tps, response time %.3f s" % (result.throughput_tps,
                                                           result.response_time_s))
    print("disk I/O per transaction: %.1f KB read, %.1f KB written"
          % (result.read_kb_per_txn, result.write_kb_per_txn))
    print()
    print("%-8s %10s %10s   %s" % ("replica", "applied", "filtered", "tables kept up to date"))
    for replica_id, replica in sorted(cluster.replicas.items()):
        tables = replica.proxy.filter_tables
        label = "ALL (filtering not active)" if tables is None else ", ".join(sorted(tables))
        print("%-8d %10d %10d   %s" % (replica_id, replica.proxy.writesets_applied,
                                       replica.proxy.writesets_filtered, label))


if __name__ == "__main__":
    main()
