#!/usr/bin/env python
"""Working-set estimation walkthrough (the mechanics of Section 2.2 / 4.2.2).

Shows exactly what the Tashkent+ load balancer sees: the execution plan of
each TPC-W transaction type (the simulated EXPLAIN output), the catalog
sizes (relpages), and the resulting lower / upper working-set estimates.
Then it packs the types into transaction groups with the three methods
MALB-S, MALB-SC and MALB-SCAP and prints the groups each method forms.

Run with:  python examples/working_set_estimation.py
"""

from repro.core.estimator import WorkingSetEstimator
from repro.core.grouping import GroupingMethod, build_groups
from repro.storage.catalog import Catalog
from repro.storage.pages import mb
from repro.storage.planner import QueryPlanner
from repro.workloads.tpcw import make_tpcw

MEMORY = mb(512) - mb(70)   # replica RAM minus the 70 MB fixed overhead


def main() -> None:
    spec = make_tpcw(300)                       # MidDB, 1.8 GB
    catalog = Catalog(schema=spec.schema)
    planner = QueryPlanner(catalog=catalog)
    estimator = WorkingSetEstimator(catalog=catalog, planner=planner)

    print("=== Execution plan of BestSellers (what EXPLAIN returns) ===")
    print(planner.plan(spec.types["BestSellers"]).explain())
    print()

    print("=== Working-set estimates per transaction type (MB) ===")
    print("%-22s %12s %12s" % ("type", "lower (SCAP)", "upper (SC)"))
    estimates = estimator.estimate_all(spec.types)
    for name in sorted(estimates):
        est = estimates[name]
        print("%-22s %12.0f %12.0f" % (name, est.scanned_bytes / mb(1), est.total_bytes / mb(1)))
    print()

    for method in (GroupingMethod.MALB_S, GroupingMethod.MALB_SC, GroupingMethod.MALB_SCAP):
        groups = build_groups(estimates, MEMORY, method=method)
        print("=== %s: %d transaction groups (memory budget %d MB) ===" %
              (method.value, len(groups), MEMORY // mb(1)))
        for group in groups:
            print("  " + group.describe())
        print()


if __name__ == "__main__":
    main()
