#!/usr/bin/env python
"""Dynamic reconfiguration: the Figure 6 experiment at example scale.

The TPC-W workload switches from the shopping mix to the browsing mix and
back while MALB-SC is serving it.  The script prints the throughput time
series (30-second buckets and the moving average) and the replica allocation
before and after each switch, showing the load balancer re-allocating
replicas to the transaction groups the new mix stresses.

Run with:  python examples/dynamic_reconfiguration.py
"""

from repro.experiments.report import format_series
from repro.experiments.runner import ExperimentConfig, build_cluster

PHASE_SECONDS = 300.0


def main() -> None:
    config = ExperimentConfig(
        name="dynamic-reconfiguration",
        workload="tpcw",
        db_label="MidDB",
        mix="shopping",
        ram_mb=512,
        policy="MALB-SC",
        schedule_phases=("shopping", "browsing", "shopping"),
        schedule_phase_length_s=PHASE_SECONDS,
        duration_s=3 * PHASE_SECONDS,
        warmup_s=60.0,
    )
    cluster = build_cluster(config)
    balancer = cluster.balancer

    print("running: shopping -> browsing -> shopping (%.0f s each)" % PHASE_SECONDS)
    result = cluster.run(duration_s=config.duration_s, warmup_s=config.warmup_s)

    print()
    print(format_series(result.metrics.moving_average_series(window_buckets=5),
                        title="Throughput over time (150 s moving average)", every=2))
    print()
    print("Final replica allocation:")
    for group_id, types in sorted(balancer.groupings().items()):
        count = balancer.replica_counts().get(group_id, 0)
        print("  %-4s x%d  [%s]" % (group_id, count, ", ".join(sorted(types))))
    print()
    print("Overall throughput: %.1f tps (paper steady states: shopping 76, browsing 45)"
          % result.throughput_tps)


if __name__ == "__main__":
    main()
