#!/usr/bin/env python
"""Quickstart: compare LeastConnections, LARD and MALB-SC on TPC-W.

Builds a 16-replica Tashkent+ cluster over the TPC-W ordering mix (MidDB,
512 MB per replica), runs each load-balancing policy for a few simulated
minutes and prints the throughput, response time and disk I/O per
transaction -- the measurements behind Figure 3 and Table 1 of the paper.

Run with:  python examples/quickstart.py
"""

from repro.experiments.report import format_result_table
from repro.experiments.runner import ExperimentConfig, run_experiment


def main() -> None:
    policies = ["LeastConnections", "LARD", "MALB-SC", "MALB-SC+UF"]
    results = []
    for policy in policies:
        config = ExperimentConfig(
            name="quickstart",
            workload="tpcw",
            db_label="MidDB",      # 1.8 GB database
            mix="ordering",        # 50 % update transactions
            ram_mb=512,            # per-replica memory
            policy=policy,
            num_replicas=16,
            duration_s=180.0,
            warmup_s=80.0,
        )
        print("running %s ..." % policy)
        results.append(run_experiment(config))

    print()
    print(format_result_table(
        results,
        paper_tps={"LeastConnections": 37, "LARD": 50, "MALB-SC": 76, "MALB-SC+UF": 113},
        title="TPC-W ordering mix, MidDB 1.8 GB, 512 MB RAM, 16 replicas"))
    print()
    malb = [r for r in results if r.config.policy == "MALB-SC"][0]
    print("MALB-SC transaction groups (replicas):")
    for group_id, types in sorted(malb.groupings.items()):
        print("  %-4s x%d  [%s]" % (group_id, malb.replica_counts.get(group_id, 0),
                                    ", ".join(sorted(types))))


if __name__ == "__main__":
    main()
