#!/usr/bin/env python
"""Elasticity demo: a flash crowd hits a 4-replica TPC-W cluster.

The closed-loop client population quadruples for three minutes.  An
autoscaler watching the monitoring daemons grows the replica set (each
newcomer joins cold and replays the certifier log), a fault injector
crashes one replica at the height of the crowd and recovers it online, the
certifier leader fails over to a backup -- and when the crowd passes, the
cluster drains back down.  The run ends by checking that no certified
update was lost anywhere along the way.

Run with:  python examples/elasticity_flash_crowd.py
"""

from repro.experiments.elasticity import (
    flash_crowd_scenario,
    run_elastic_experiment,
    window_throughput,
)
from repro.experiments.report import format_series


def main() -> None:
    scenario = flash_crowd_scenario(autoscale=True, with_faults=True)
    print("flash crowd: %d clients -> %d during [%.0f, %.0f) s; one crash at %.0f s"
          % (scenario.base.num_replicas * scenario.base.clients_per_replica,
             scenario.surge_clients, scenario.surge_start_s, scenario.surge_end_s,
             scenario.crash_at_s))
    result = run_elastic_experiment(scenario)

    print()
    print(format_series(result.run.metrics.moving_average_series(window_buckets=3),
                        title="Throughput over time (90 s moving average)", every=2))
    print()
    print("Scaling decisions:")
    for decision in result.scaling:
        print("  t=%6.0f  %-10s %d -> %d replicas  (load signal %.2f)"
              % (decision.time, decision.action, decision.replicas_before,
                 decision.replicas_after, decision.utilisation))
    print()
    print("Faults:")
    for record in result.faults:
        target = "replica %d" % record.replica_id if record.replica_id >= 0 else "certifier"
        print("  t=%6.0f  %-18s %-10s %s" % (record.time, record.kind, target, record.detail))
    print()
    print("Replicas: start %d, peak %d, final %d"
          % (result.start_replicas, result.peak_replicas, result.final_replicas))
    print("Surge-window throughput: %.1f tps (%.1f tps over the whole run)"
          % (result.surge_throughput_tps, result.throughput_tps))
    print("Post-scale-out window [180, 300): %.1f tps"
          % window_throughput(result.run, 180.0, 300.0))
    print("Certified updates lost: %d (log total order: %s)"
          % (result.lost_certified_updates, result.log_is_total_order))


if __name__ == "__main__":
    main()
