"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``)
in offline environments without the ``wheel`` package; all real metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
